//! Lock-acquisition trace recorder.
//!
//! Weak determinism is observable: the sequence of `(lock, thread, clock)`
//! acquisitions must be identical across runs. The recorder appends events
//! from inside the acquisition critical path — acquisitions are totally
//! ordered by the deterministic protocol and a thread's next clock advance
//! happens only after its record lands, so the append order *is* the
//! logical order.

use detlock_shim::sync::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};

/// One recorded acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Runtime-assigned lock id.
    pub lock: u64,
    /// Acquiring thread.
    pub tid: u32,
    /// The thread's logical clock just after acquisition.
    pub clock: u64,
}

/// Append-only event recorder; disabled recorders cost one atomic load per
/// acquisition.
pub struct TraceRecorder {
    enabled: AtomicBool,
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceRecorder {
    /// Create a recorder.
    pub fn new(enabled: bool) -> TraceRecorder {
        TraceRecorder {
            enabled: AtomicBool::new(enabled),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enable/disable recording.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Record one acquisition (no-op when disabled).
    pub fn record(&self, lock: u64, tid: u32, clock: u64) {
        if self.is_enabled() {
            self.events.lock().push(TraceEvent { lock, tid, clock });
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of the event log.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Order-sensitive FNV-1a hash of the `(lock, tid)` sequence.
    pub fn hash(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for e in self.events.lock().iter() {
            for b in e
                .lock
                .to_le_bytes()
                .iter()
                .chain(e.tid.to_le_bytes().iter())
            {
                h ^= *b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }

    /// Drop all recorded events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }
}

/// Index of the first position where two traces disagree on `(lock, tid)`
/// (clock differences are tolerated, matching [`TraceRecorder::hash`]), or
/// `None` when one trace is a prefix-equal match of the other's length.
/// Chaos tests and `detcheck` use this to *show* a divergence, not just
/// detect one.
pub fn first_divergence(a: &[TraceEvent], b: &[TraceEvent]) -> Option<usize> {
    if a.len() != b.len() {
        let common = a.len().min(b.len());
        for i in 0..common {
            if (a[i].lock, a[i].tid) != (b[i].lock, b[i].tid) {
                return Some(i);
            }
        }
        return Some(common);
    }
    (0..a.len()).find(|&i| (a[i].lock, a[i].tid) != (b[i].lock, b[i].tid))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let t = TraceRecorder::new(false);
        t.record(1, 0, 5);
        assert!(t.is_empty());
        t.set_enabled(true);
        t.record(1, 0, 5);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn hash_depends_on_order_not_clock() {
        let a = TraceRecorder::new(true);
        a.record(1, 0, 5);
        a.record(2, 1, 9);
        let b = TraceRecorder::new(true);
        b.record(1, 0, 500); // clock differs: same order hash
        b.record(2, 1, 900);
        assert_eq!(a.hash(), b.hash());
        let c = TraceRecorder::new(true);
        c.record(2, 1, 9);
        c.record(1, 0, 5);
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn first_divergence_pinpoints_the_event() {
        let ev = |lock, tid| TraceEvent {
            lock,
            tid,
            clock: 0,
        };
        let a = vec![ev(1, 0), ev(2, 1), ev(3, 0)];
        let same = vec![ev(1, 0), ev(2, 1), ev(3, 0)];
        let differs = vec![ev(1, 0), ev(2, 2), ev(3, 0)];
        let shorter = vec![ev(1, 0), ev(2, 1)];
        assert_eq!(first_divergence(&a, &same), None);
        assert_eq!(first_divergence(&a, &differs), Some(1));
        assert_eq!(first_divergence(&a, &shorter), Some(2));
    }

    #[test]
    fn snapshot_and_clear() {
        let t = TraceRecorder::new(true);
        t.record(3, 2, 7);
        let s = t.snapshot();
        assert_eq!(
            s,
            vec![TraceEvent {
                lock: 3,
                tid: 2,
                clock: 7
            }]
        );
        t.clear();
        assert!(t.is_empty());
    }
}
