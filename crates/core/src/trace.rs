//! Lock-acquisition trace recorder.
//!
//! Weak determinism is observable: the sequence of `(lock, thread, clock)`
//! acquisitions must be identical across runs. The recorder appends events
//! from inside the acquisition critical path — acquisitions are totally
//! ordered by the deterministic protocol and a thread's next clock advance
//! happens only after its record lands, so the append order *is* the
//! logical order.
//!
//! # Memory model
//!
//! The recorder maintains an **incremental FNV-1a hash** over the
//! `(lock, tid)` sequence, folded in at [`TraceRecorder::record`] time, so
//! [`TraceRecorder::hash`] is O(1) regardless of episode length — this is
//! what lets a long-running service hand out *determinism receipts* without
//! ever buffering the episode. Event retention is configurable:
//!
//! * **unbounded** ([`TraceRecorder::new`]) — every event kept; the mode
//!   `detcheck` and the divergence-pinpointing tooling need;
//! * **bounded ring** ([`TraceRecorder::with_capacity`]) — only the most
//!   recent `capacity` events are retained (a divergence-diagnosis window);
//!   the hash still covers the complete history.

use detlock_shim::sync::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};

/// FNV-1a offset basis (the empty-trace hash).
const FNV_OFFSET: u64 = 0xcbf29ce484222325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x100000001b3;

/// Fold one `(lock, tid)` acquisition into an FNV-1a accumulator.
#[inline]
fn fnv_fold(mut h: u64, lock: u64, tid: u32) -> u64 {
    for b in lock.to_le_bytes().iter().chain(tid.to_le_bytes().iter()) {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One recorded acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Runtime-assigned lock id.
    pub lock: u64,
    /// Acquiring thread.
    pub tid: u32,
    /// The thread's logical clock just after acquisition.
    pub clock: u64,
}

struct TraceState {
    /// Retained events (the full history, or the ring-buffer tail).
    events: VecDeque<TraceEvent>,
    /// Total events ever recorded (≥ `events.len()` in bounded mode).
    total: u64,
    /// Incremental order hash over the complete history.
    hash: u64,
}

/// Append-only event recorder; disabled recorders cost one atomic load per
/// acquisition.
pub struct TraceRecorder {
    enabled: AtomicBool,
    /// `None` = retain everything; `Some(n)` = ring buffer of the last `n`.
    capacity: Option<usize>,
    state: Mutex<TraceState>,
}

impl TraceRecorder {
    /// Create a recorder that retains the full event history.
    pub fn new(enabled: bool) -> TraceRecorder {
        TraceRecorder::with_capacity(enabled, None)
    }

    /// Create a recorder with bounded retention: only the most recent
    /// `capacity` events are kept (`None` = unbounded). The incremental
    /// hash and the event count always cover the complete history, so
    /// receipts stay O(1)-exact however long the episode runs.
    pub fn with_capacity(enabled: bool, capacity: Option<usize>) -> TraceRecorder {
        TraceRecorder {
            enabled: AtomicBool::new(enabled),
            capacity,
            state: Mutex::new(TraceState {
                events: VecDeque::new(),
                total: 0,
                hash: FNV_OFFSET,
            }),
        }
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enable/disable recording.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Record one acquisition (no-op when disabled).
    pub fn record(&self, lock: u64, tid: u32, clock: u64) {
        if self.is_enabled() {
            let mut st = self.state.lock();
            st.hash = fnv_fold(st.hash, lock, tid);
            st.total += 1;
            if let Some(cap) = self.capacity {
                if cap == 0 {
                    return;
                }
                if st.events.len() == cap {
                    st.events.pop_front();
                }
            }
            st.events.push_back(TraceEvent { lock, tid, clock });
        }
    }

    /// Number of events recorded over the recorder's lifetime (in bounded
    /// mode this can exceed [`TraceRecorder::retained`]).
    pub fn len(&self) -> usize {
        self.state.lock().total as usize
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events currently held in the buffer.
    pub fn retained(&self) -> usize {
        self.state.lock().events.len()
    }

    /// Events evicted from a bounded ring (0 in unbounded mode).
    pub fn dropped(&self) -> usize {
        let st = self.state.lock();
        st.total as usize - st.events.len()
    }

    /// Copy of the retained event window (the full log in unbounded mode).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.state.lock().events.iter().copied().collect()
    }

    /// Order-sensitive FNV-1a hash of the complete `(lock, tid)` history.
    /// O(1): maintained incrementally at record time.
    pub fn hash(&self) -> u64 {
        self.state.lock().hash
    }

    /// Drop all recorded events and reset the hash to the empty-trace
    /// value.
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.events.clear();
        st.total = 0;
        st.hash = FNV_OFFSET;
    }
}

/// Index of the first position where two traces disagree on `(lock, tid)`
/// (clock differences are tolerated, matching [`TraceRecorder::hash`]), or
/// `None` when one trace is a prefix-equal match of the other's length.
/// Chaos tests and `detcheck` use this to *show* a divergence, not just
/// detect one.
pub fn first_divergence(a: &[TraceEvent], b: &[TraceEvent]) -> Option<usize> {
    if a.len() != b.len() {
        let common = a.len().min(b.len());
        for i in 0..common {
            if (a[i].lock, a[i].tid) != (b[i].lock, b[i].tid) {
                return Some(i);
            }
        }
        return Some(common);
    }
    (0..a.len()).find(|&i| (a[i].lock, a[i].tid) != (b[i].lock, b[i].tid))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let t = TraceRecorder::new(false);
        t.record(1, 0, 5);
        assert!(t.is_empty());
        t.set_enabled(true);
        t.record(1, 0, 5);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn hash_depends_on_order_not_clock() {
        let a = TraceRecorder::new(true);
        a.record(1, 0, 5);
        a.record(2, 1, 9);
        let b = TraceRecorder::new(true);
        b.record(1, 0, 500); // clock differs: same order hash
        b.record(2, 1, 900);
        assert_eq!(a.hash(), b.hash());
        let c = TraceRecorder::new(true);
        c.record(2, 1, 9);
        c.record(1, 0, 5);
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn bounded_ring_keeps_tail_but_hashes_everything() {
        let full = TraceRecorder::new(true);
        let ring = TraceRecorder::with_capacity(true, Some(3));
        for i in 0..10u64 {
            full.record(i, (i % 4) as u32, i);
            ring.record(i, (i % 4) as u32, i);
        }
        // Hash covers the complete history in both modes.
        assert_eq!(ring.hash(), full.hash());
        // Counts cover the history; retention is bounded.
        assert_eq!(ring.len(), 10);
        assert_eq!(ring.retained(), 3);
        assert_eq!(ring.dropped(), 7);
        assert_eq!(full.retained(), 10);
        assert_eq!(full.dropped(), 0);
        // The window is the most recent events, in order.
        let tail: Vec<u64> = ring.snapshot().iter().map(|e| e.lock).collect();
        assert_eq!(tail, vec![7, 8, 9]);
    }

    #[test]
    fn zero_capacity_ring_still_counts_and_hashes() {
        let t = TraceRecorder::with_capacity(true, Some(0));
        t.record(1, 0, 1);
        t.record(2, 1, 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.retained(), 0);
        let reference = TraceRecorder::new(true);
        reference.record(1, 0, 1);
        reference.record(2, 1, 2);
        assert_eq!(t.hash(), reference.hash());
    }

    #[test]
    fn clear_resets_hash_to_empty() {
        let t = TraceRecorder::new(true);
        let empty_hash = t.hash();
        t.record(3, 2, 7);
        assert_ne!(t.hash(), empty_hash);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.hash(), empty_hash);
    }

    #[test]
    fn first_divergence_pinpoints_the_event() {
        let ev = |lock, tid| TraceEvent {
            lock,
            tid,
            clock: 0,
        };
        let a = vec![ev(1, 0), ev(2, 1), ev(3, 0)];
        let same = vec![ev(1, 0), ev(2, 1), ev(3, 0)];
        let differs = vec![ev(1, 0), ev(2, 2), ev(3, 0)];
        let shorter = vec![ev(1, 0), ev(2, 1)];
        assert_eq!(first_divergence(&a, &same), None);
        assert_eq!(first_divergence(&a, &differs), Some(1));
        assert_eq!(first_divergence(&a, &shorter), Some(2));
    }

    #[test]
    fn snapshot_and_clear() {
        let t = TraceRecorder::new(true);
        t.record(3, 2, 7);
        let s = t.snapshot();
        assert_eq!(
            s,
            vec![TraceEvent {
                lock: 3,
                tid: 2,
                clock: 7
            }]
        );
        t.clear();
        assert!(t.is_empty());
    }
}
