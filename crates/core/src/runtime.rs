//! The deterministic runtime: thread spawn/join, the thread-local current
//! handle, and the `tick` hot path.
//!
//! This is the user-space library half of DetLock (paper §III-B): it
//! replaces pthread creation/join and provides the logical-clock plumbing
//! that compiler-inserted `tick` calls drive. No kernel support, no
//! hardware counters — plain atomics and a spin-with-yield arbiter.

use crate::registry::{DetTid, Registry, ThreadState};
use crate::trace::TraceRecorder;
use parking_lot::{Condvar, Mutex};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct DetConfig {
    /// Maximum number of deterministic threads over the runtime's lifetime
    /// (slots are not reused).
    pub max_threads: usize,
    /// Record the lock-acquisition trace (see [`crate::trace`]).
    pub record_trace: bool,
}

impl Default for DetConfig {
    fn default() -> Self {
        DetConfig {
            max_threads: 64,
            record_trace: false,
        }
    }
}

pub(crate) struct Inner {
    pub(crate) registry: Registry,
    pub(crate) trace: TraceRecorder,
    pub(crate) next_lock_id: AtomicU64,
    /// child tid → parent tid blocked joining it.
    join_waiters: Mutex<HashMap<DetTid, DetTid>>,
    join_cv_mutex: Mutex<()>,
    join_cv: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Inner>, DetTid)>> = const { RefCell::new(None) };
}

/// Handle to the deterministic runtime. Cheap to clone; the creating thread
/// is registered as deterministic thread 0 ("main").
#[derive(Clone)]
pub struct DetRuntime {
    pub(crate) inner: Arc<Inner>,
}

impl DetRuntime {
    /// Create a runtime and register the calling thread as main (tid 0)
    /// with logical clock 0.
    pub fn new(config: DetConfig) -> DetRuntime {
        let inner = Arc::new(Inner {
            registry: Registry::new(config.max_threads),
            trace: TraceRecorder::new(config.record_trace),
            next_lock_id: AtomicU64::new(0),
            join_waiters: Mutex::new(HashMap::new()),
            join_cv_mutex: Mutex::new(()),
            join_cv: Condvar::new(),
        });
        let main_tid = inner.registry.register(0);
        debug_assert_eq!(main_tid, 0);
        CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&inner), main_tid)));
        DetRuntime { inner }
    }

    /// Create a runtime with the default configuration.
    pub fn with_defaults() -> DetRuntime {
        DetRuntime::new(DetConfig::default())
    }

    /// The calling thread's deterministic tid (panics if the thread is not
    /// registered with this runtime).
    pub fn current_tid(&self) -> DetTid {
        let (inner, tid) = current();
        assert!(
            Arc::ptr_eq(&inner, &self.inner),
            "calling thread belongs to a different DetRuntime"
        );
        tid
    }

    /// Advance the calling thread's logical clock — the operation the
    /// DetLock compiler pass inserts at basic-block granularity.
    #[inline]
    pub fn tick(&self, amount: u64) {
        let (_, tid) = current();
        self.inner.registry.tick(tid, amount);
    }

    /// The calling thread's current logical clock.
    pub fn clock(&self) -> u64 {
        let (_, tid) = current();
        self.inner.registry.clock(tid)
    }

    /// Spawn a deterministic thread. This is itself a deterministic event:
    /// the parent waits for its turn, so child tids (the arbitration
    /// tie-breakers) are assigned in a timing-independent order; the child
    /// starts with `parent clock + 1`.
    pub fn spawn<F, T>(&self, f: F) -> DetJoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (inner, me) = current();
        assert!(Arc::ptr_eq(&inner, &self.inner));
        let reg = &self.inner.registry;
        reg.wait_for_turn(me);
        let child_clock = reg.clock(me) + 1;
        let child_tid = reg.register(child_clock);
        reg.tick(me, 1);

        let child_inner = Arc::clone(&self.inner);
        let std_handle = std::thread::Builder::new()
            .name(format!("det-{child_tid}"))
            .spawn(move || {
                CURRENT.with(|c| {
                    *c.borrow_mut() = Some((Arc::clone(&child_inner), child_tid))
                });
                let result = f();
                det_exit(&child_inner, child_tid);
                result
            })
            .expect("failed to spawn OS thread");
        DetJoinHandle {
            rt: self.clone(),
            tid: child_tid,
            std: Some(std_handle),
        }
    }

    /// Deterministically retire the calling thread from arbitration without
    /// exiting the OS thread. Call this on the *main* thread when it will
    /// stop participating in deterministic synchronization (otherwise its
    /// stalled clock blocks every other thread's events). Joining threads
    /// deactivates main automatically while blocked, so a main that spawns
    /// then immediately joins does not need this.
    pub fn retire_current(&self) {
        let (inner, me) = current();
        assert!(Arc::ptr_eq(&inner, &self.inner));
        det_exit(&self.inner, me);
        CURRENT.with(|c| *c.borrow_mut() = None);
    }

    /// Number of recorded lock acquisitions (when tracing is on).
    pub fn trace_len(&self) -> usize {
        self.inner.trace.len()
    }

    /// Snapshot of the lock-acquisition trace.
    pub fn trace_events(&self) -> Vec<crate::trace::TraceEvent> {
        self.inner.trace.snapshot()
    }

    /// Order-sensitive hash of the acquisition trace (equal across runs ⇔
    /// weak determinism held).
    pub fn trace_hash(&self) -> u64 {
        self.inner.trace.hash()
    }

    /// Clear the recorded trace.
    pub fn trace_clear(&self) {
        self.inner.trace.clear()
    }

    pub(crate) fn alloc_lock_id(&self) -> u64 {
        self.inner.next_lock_id.fetch_add(1, Ordering::Relaxed)
    }
}

/// The calling thread's `(runtime, tid)`; panics when called from a thread
/// not registered with any deterministic runtime.
pub(crate) fn current() -> (Arc<Inner>, DetTid) {
    CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .map(|(i, t)| (Arc::clone(i), *t))
            .expect("current thread is not registered with a DetRuntime")
    })
}

/// Advance the calling thread's logical clock (free-function form used by
/// instrumented code).
#[inline]
pub fn tick(amount: u64) {
    CURRENT.with(|c| {
        let b = c.borrow();
        let (inner, tid) = b
            .as_ref()
            .expect("tick() called on a thread not registered with a DetRuntime");
        inner.registry.tick(*tid, amount);
    });
}

/// Deterministic thread exit: a det event at the thread's turn. Marks the
/// slot finished and, if a parent is blocked joining, reactivates it with
/// `max(parent, child) + 1`.
fn det_exit(inner: &Arc<Inner>, me: DetTid) {
    let reg = &inner.registry;
    reg.wait_for_turn(me);
    let my_clock = reg.clock(me);
    reg.transition(|_| {
        reg.set_exit_clock(me, my_clock);
        reg.set_state(me, ThreadState::Finished);
        if let Some(parent) = inner.join_waiters.lock().remove(&me) {
            let pc = reg.clock(parent).max(my_clock) + 1;
            reg.set_clock(parent, pc);
            reg.set_state(parent, ThreadState::Active);
        }
    });
    inner.join_cv.notify_all();
}

/// Join handle for a deterministic thread.
pub struct DetJoinHandle<T> {
    rt: DetRuntime,
    tid: DetTid,
    std: Option<std::thread::JoinHandle<T>>,
}

impl<T> DetJoinHandle<T> {
    /// The child's deterministic tid.
    pub fn det_tid(&self) -> DetTid {
        self.tid
    }

    /// Deterministically join the child: a det event at the parent's turn.
    /// While blocked, the parent is excluded from arbitration; the child's
    /// exit event reactivates it with `max(parent, child) + 1`.
    pub fn join(mut self) -> T {
        let (inner, me) = current();
        assert!(Arc::ptr_eq(&inner, &self.rt.inner));
        let reg = &inner.registry;
        reg.wait_for_turn(me);
        let finished_now = reg.transition(|_| {
            if reg.state(self.tid) == ThreadState::Finished {
                true
            } else {
                reg.set_state(me, ThreadState::Blocked);
                inner.join_waiters.lock().insert(self.tid, me);
                false
            }
        });
        if finished_now {
            let c = reg.clock(me).max(reg.exit_clock(self.tid)) + 1;
            reg.set_clock(me, c);
        } else {
            let mut g = inner.join_cv_mutex.lock();
            while reg.state(me) != ThreadState::Active {
                inner.join_cv.wait(&mut g);
            }
        }
        self.std
            .take()
            .expect("joined twice")
            .join()
            .expect("deterministic thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_join_returns_value_and_orders_clocks() {
        let rt = DetRuntime::with_defaults();
        rt.tick(10);
        let h = rt.spawn(|| {
            tick(5);
            42
        });
        assert_eq!(h.join(), 42);
        // Parent clock advanced past child's exit clock.
        assert!(rt.clock() > 10);
    }

    #[test]
    fn child_tids_are_sequential_in_spawn_order() {
        let rt = DetRuntime::with_defaults();
        let h1 = rt.spawn(|| 1);
        let h2 = rt.spawn(|| 2);
        assert_eq!(h1.det_tid(), 1);
        assert_eq!(h2.det_tid(), 2);
        // Join in reverse order still works (each join is its own event).
        assert_eq!(h2.join(), 2);
        assert_eq!(h1.join(), 1);
    }

    #[test]
    fn nested_spawn() {
        let rt = DetRuntime::with_defaults();
        let rt2 = rt.clone();
        let h = rt.spawn(move || {
            let inner = rt2.spawn(|| 7);
            inner.join() + 1
        });
        assert_eq!(h.join(), 8);
    }

    #[test]
    fn tick_free_function_matches_handle() {
        let rt = DetRuntime::with_defaults();
        tick(3);
        rt.tick(4);
        assert_eq!(rt.clock(), 7);
    }

    #[test]
    fn join_blocks_parent_without_stalling_children() {
        // Parent joins child A while child B does det work: B must not be
        // stalled by the blocked parent's low clock.
        let rt = DetRuntime::with_defaults();
        let slow = rt.spawn(|| {
            std::thread::sleep(std::time::Duration::from_millis(30));
            tick(1000);
            1
        });
        let busy = rt.spawn(|| {
            for _ in 0..100 {
                tick(10);
            }
            2
        });
        assert_eq!(slow.join(), 1);
        assert_eq!(busy.join(), 2);
    }

    #[test]
    fn tick_outside_runtime_panics() {
        let r = std::thread::spawn(|| tick(1)).join();
        assert!(r.is_err(), "tick on an unregistered thread must panic");
    }

    #[test]
    fn retire_current_releases_workers() {
        let rt = DetRuntime::with_defaults();
        let h = rt.spawn(|| {
            tick(1);
            5
        });
        // Retire main: workers proceed even though main's clock is 0 and it
        // never ticks again. Then the handle can still be joined via the
        // std handle path... join() requires registration, so join first.
        let v = h.join();
        rt.retire_current();
        assert_eq!(v, 5);
    }
}
