//! The deterministic runtime: thread spawn/join, the thread-local current
//! handle, and the `tick` hot path.
//!
//! This is the user-space library half of DetLock (paper §III-B): it
//! replaces pthread creation/join and provides the logical-clock plumbing
//! that compiler-inserted `tick` calls drive. No kernel support, no
//! hardware counters — plain atomics and a spin-with-yield arbiter.
//!
//! # Panic safety
//!
//! A deterministic thread that panics is not allowed to wedge the arbiter:
//! the spawned closure runs under `catch_unwind`, the deterministic exit
//! protocol runs unconditionally afterwards (so the slot reaches
//! `Finished` and a joining parent is reactivated), and the panic payload
//! travels to the parent — [`DetJoinHandle::join`] re-raises it,
//! [`DetJoinHandle::try_join`] returns it as
//! [`DetError::ChildPanicked`]. Runtime-internal failures (capacity,
//! stalls, eviction) surface as typed [`DetError`] values; infallible
//! entry points raise them as panics *carrying the `DetError` payload*, so
//! even through the panic channel the error stays machine-readable.

use crate::error::{DetError, StallAction};
use crate::fault::FaultPlan;
use crate::registry::{DetTid, Registry, ThreadState};
use crate::trace::TraceRecorder;
use detlock_shim::sync::{Condvar, Mutex};
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct DetConfig {
    /// Maximum number of deterministic threads over the runtime's lifetime
    /// (slots are not reused).
    pub max_threads: usize,
    /// Record the lock-acquisition trace (see [`crate::trace`]).
    pub record_trace: bool,
    /// Trace retention: `None` keeps every event (the detcheck /
    /// divergence-diagnosis mode); `Some(n)` keeps a ring of the last `n`
    /// events so long-running episodes stay O(1) in memory. The trace
    /// *hash* always covers the complete history either way.
    pub trace_capacity: Option<usize>,
    /// Stall watchdog: when `Some`, a deterministic wait that observes no
    /// arbitration progress for this long triggers `on_stall`. `None`
    /// disables the watchdog (waits may hang forever on a wedged program).
    pub watchdog_timeout: Option<Duration>,
    /// What the watchdog does on a suspected deadlock (see
    /// [`StallAction`]).
    pub on_stall: StallAction,
    /// Deterministic fault injection plan (see [`crate::fault`]); `None`
    /// injects nothing.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for DetConfig {
    fn default() -> Self {
        DetConfig {
            max_threads: 64,
            record_trace: false,
            trace_capacity: None,
            watchdog_timeout: Some(Duration::from_secs(5)),
            on_stall: StallAction::Abort,
            fault_plan: None,
        }
    }
}

pub(crate) struct Inner {
    pub(crate) registry: Registry,
    pub(crate) trace: TraceRecorder,
    pub(crate) next_lock_id: AtomicU64,
    pub(crate) fault: Option<FaultPlan>,
    /// child tid → parent tid blocked joining it.
    join_waiters: Mutex<HashMap<DetTid, DetTid>>,
    join_cv_mutex: Mutex<()>,
    join_cv: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Inner>, DetTid)>> = const { RefCell::new(None) };
}

/// Handle to the deterministic runtime. Cheap to clone; the creating thread
/// is registered as deterministic thread 0 ("main").
#[derive(Clone)]
pub struct DetRuntime {
    pub(crate) inner: Arc<Inner>,
}

impl DetRuntime {
    /// Create a runtime and register the calling thread as main (tid 0)
    /// with logical clock 0.
    pub fn new(config: DetConfig) -> DetRuntime {
        let inner = Arc::new(Inner {
            registry: Registry::with_watchdog(
                config.max_threads,
                config.watchdog_timeout,
                config.on_stall,
            ),
            trace: TraceRecorder::with_capacity(config.record_trace, config.trace_capacity),
            next_lock_id: AtomicU64::new(0),
            fault: config.fault_plan.filter(|p| !p.is_empty()),
            join_waiters: Mutex::new(HashMap::new()),
            join_cv_mutex: Mutex::new(()),
            join_cv: Condvar::new(),
        });
        let main_tid = inner
            .registry
            .register(0)
            .expect("fresh registry has capacity for main");
        debug_assert_eq!(main_tid, 0);
        CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&inner), main_tid)));
        DetRuntime { inner }
    }

    /// Create a runtime with the default configuration.
    pub fn with_defaults() -> DetRuntime {
        DetRuntime::new(DetConfig::default())
    }

    /// The calling thread's deterministic tid (panics if the thread is not
    /// registered with this runtime; see [`DetRuntime::try_current_tid`]).
    pub fn current_tid(&self) -> DetTid {
        self.try_current_tid().unwrap_or_else(|e| raise(e))
    }

    /// The calling thread's deterministic tid, or
    /// [`DetError::NotRegistered`] / [`DetError::WrongRuntime`].
    pub fn try_current_tid(&self) -> Result<DetTid, DetError> {
        let (inner, tid) = try_current()?;
        if !Arc::ptr_eq(&inner, &self.inner) {
            return Err(DetError::WrongRuntime);
        }
        Ok(tid)
    }

    /// Advance the calling thread's logical clock — the operation the
    /// DetLock compiler pass inserts at basic-block granularity.
    #[inline]
    pub fn tick(&self, amount: u64) {
        let (_, tid) = current();
        self.inner.registry.tick(tid, amount);
    }

    /// The calling thread's current logical clock.
    pub fn clock(&self) -> u64 {
        let (_, tid) = current();
        self.inner.registry.clock(tid)
    }

    /// Spawn a deterministic thread. This is itself a deterministic event:
    /// the parent waits for its turn, so child tids (the arbitration
    /// tie-breakers) are assigned in a timing-independent order; the child
    /// starts with `parent clock + 1`.
    ///
    /// Panics on runtime errors (capacity, stall, OS spawn failure) with a
    /// [`DetError`] payload; use [`DetRuntime::try_spawn`] for a `Result`.
    pub fn spawn<F, T>(&self, f: F) -> DetJoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        self.try_spawn(f).unwrap_or_else(|e| raise(e))
    }

    /// Fallible [`DetRuntime::spawn`]: surfaces
    /// [`DetError::CapacityExhausted`] (the registry's fixed slots ran
    /// out), [`DetError::SpawnFailed`] (the OS refused a thread; the
    /// reserved slot is rolled back so arbitration stays healthy), and
    /// watchdog errors from the spawn event's own turn wait.
    pub fn try_spawn<F, T>(&self, f: F) -> Result<DetJoinHandle<T>, DetError>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (inner, me) = try_current()?;
        if !Arc::ptr_eq(&inner, &self.inner) {
            return Err(DetError::WrongRuntime);
        }
        let reg = &self.inner.registry;
        fault_point(&inner, me);
        reg.wait_for_turn(me)?;
        let child_clock = reg.clock(me) + 1;
        let child_tid = reg.register(child_clock)?;
        reg.tick(me, 1);

        let child_inner = Arc::clone(&self.inner);
        let spawn_result = std::thread::Builder::new()
            .name(format!("det-{child_tid}"))
            .spawn(move || {
                CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&child_inner), child_tid)));
                // Panic safety: catch the payload so the deterministic exit
                // protocol ALWAYS runs — a panicking child must still reach
                // `Finished` and reactivate a joining parent, otherwise the
                // whole arbiter wedges on its frozen clock.
                let result = catch_unwind(AssertUnwindSafe(f));
                det_exit(&child_inner, child_tid);
                result
            });
        let std_handle = match spawn_result {
            Ok(h) => h,
            Err(source) => {
                // The child slot was reserved but no thread will ever run
                // it: retire it so its zero-progress clock cannot stall
                // arbitration.
                reg.transition(|_| {
                    reg.set_exit_clock(child_tid, child_clock);
                    reg.set_state(child_tid, ThreadState::Finished);
                });
                return Err(DetError::SpawnFailed { source });
            }
        };
        Ok(DetJoinHandle {
            rt: self.clone(),
            tid: child_tid,
            std: Some(std_handle),
        })
    }

    /// Deterministically retire the calling thread from arbitration without
    /// exiting the OS thread. Call this on the *main* thread when it will
    /// stop participating in deterministic synchronization (otherwise its
    /// stalled clock blocks every other thread's events). Joining threads
    /// deactivates main automatically while blocked, so a main that spawns
    /// then immediately joins does not need this.
    pub fn retire_current(&self) {
        let (inner, me) = current();
        assert!(Arc::ptr_eq(&inner, &self.inner));
        det_exit(&self.inner, me);
        CURRENT.with(|c| *c.borrow_mut() = None);
    }

    /// Number of recorded lock acquisitions (when tracing is on).
    pub fn trace_len(&self) -> usize {
        self.inner.trace.len()
    }

    /// Snapshot of the lock-acquisition trace.
    pub fn trace_events(&self) -> Vec<crate::trace::TraceEvent> {
        self.inner.trace.snapshot()
    }

    /// Order-sensitive hash of the acquisition trace (equal across runs ⇔
    /// weak determinism held).
    pub fn trace_hash(&self) -> u64 {
        self.inner.trace.hash()
    }

    /// Clear the recorded trace.
    pub fn trace_clear(&self) {
        self.inner.trace.clear()
    }

    /// Diagnostic snapshot of every deterministic thread (tid, clock,
    /// state, event count, waited-on lock) — the same data a
    /// [`crate::StallReport`] carries.
    pub fn thread_snapshots(&self) -> Vec<crate::ThreadSnapshot> {
        self.inner.registry.snapshot()
    }

    pub(crate) fn alloc_lock_id(&self) -> u64 {
        self.inner.next_lock_id.fetch_add(1, Ordering::Relaxed)
    }
}

/// The calling thread's `(runtime, tid)`; panics (with a
/// [`DetError::NotRegistered`] payload) when called from a thread not
/// registered with any deterministic runtime.
pub(crate) fn current() -> (Arc<Inner>, DetTid) {
    try_current().unwrap_or_else(|e| raise(e))
}

/// Fallible [`current`].
pub(crate) fn try_current() -> Result<(Arc<Inner>, DetTid), DetError> {
    CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .map(|(i, t)| (Arc::clone(i), *t))
            .ok_or(DetError::NotRegistered)
    })
}

/// Raise a runtime error from an infallible API: panic carrying the typed
/// [`DetError`] payload, so `catch_unwind` / [`DetJoinHandle::try_join`]
/// callers can downcast it rather than parse a message.
pub(crate) fn raise(e: DetError) -> ! {
    std::panic::panic_any(e)
}

/// Enter a deterministic event for fault accounting: bumps the thread's
/// event counter and applies the configured [`FaultPlan`] (seeded delay
/// and/or injected panic) at the `(tid, event)` coordinate. Called at the
/// top of every deterministic event *except* exit — injecting a panic into
/// the exit protocol would turn recovery itself into a fault.
pub(crate) fn fault_point(inner: &Arc<Inner>, tid: DetTid) {
    let event = inner.registry.bump_events(tid);
    if let Some(plan) = &inner.fault {
        if let Some(us) = plan.delay_us(tid, event) {
            std::thread::sleep(Duration::from_micros(us));
        }
        if plan.panics_at(tid, event) {
            std::panic::panic_any(crate::fault::InjectedPanic { tid, event });
        }
    }
}

/// Wait for the deterministic turn, raising watchdog/eviction errors as
/// typed panics (used by the infallible lock/barrier/condvar paths).
pub(crate) fn wait_turn(inner: &Inner, me: DetTid) {
    if let Err(e) = inner.registry.wait_for_turn(me) {
        raise(e)
    }
}

/// Advance the calling thread's logical clock (free-function form used by
/// instrumented code). Panics on an unregistered thread; see [`try_tick`].
#[inline]
pub fn tick(amount: u64) {
    CURRENT.with(|c| {
        let b = c.borrow();
        let (inner, tid) = b
            .as_ref()
            .expect("tick() called on a thread not registered with a DetRuntime");
        inner.registry.tick(*tid, amount);
    });
}

/// Fallible [`tick`]: `Err(DetError::NotRegistered)` instead of panicking
/// when the calling thread is not deterministic.
#[inline]
pub fn try_tick(amount: u64) -> Result<(), DetError> {
    CURRENT.with(|c| {
        let b = c.borrow();
        let (inner, tid) = b.as_ref().ok_or(DetError::NotRegistered)?;
        inner.registry.tick(*tid, amount);
        Ok(())
    })
}

/// Deterministic thread exit: a det event at the thread's turn. Marks the
/// slot finished and, if a parent is blocked joining, reactivates it with
/// `max(parent, child) + 1`.
///
/// Must never wedge: if the thread is no longer `Active` (evicted) or its
/// turn wait fails, it *force-exits* — skips arbitration and goes straight
/// to the finish transition. An imperfectly-ordered exit clock is strictly
/// better than a `Finished`-less slot stalling every survivor.
fn det_exit(inner: &Arc<Inner>, me: DetTid) {
    let reg = &inner.registry;
    if reg.state(me) == ThreadState::Active {
        let _ = reg.wait_for_turn(me);
    }
    let my_clock = reg.clock(me);
    reg.transition(|_| {
        reg.set_exit_clock(me, my_clock);
        reg.set_state(me, ThreadState::Finished);
        if let Some(parent) = inner.join_waiters.lock().remove(&me) {
            let pc = reg.clock(parent).max(my_clock) + 1;
            reg.set_clock(parent, pc);
            reg.set_state(parent, ThreadState::Active);
        }
    });
    inner.join_cv.notify_all();
}

/// Join handle for a deterministic thread.
///
/// Dropping an unjoined handle *detaches* the child deterministically: the
/// child keeps running and its exit event proceeds normally (no parent to
/// wake), and no stale `join_waiters` entry is left behind.
pub struct DetJoinHandle<T> {
    rt: DetRuntime,
    tid: DetTid,
    std: Option<std::thread::JoinHandle<std::thread::Result<T>>>,
}

impl<T> DetJoinHandle<T> {
    /// The child's deterministic tid.
    pub fn det_tid(&self) -> DetTid {
        self.tid
    }

    /// Deterministically join the child: a det event at the parent's turn.
    /// While blocked, the parent is excluded from arbitration; the child's
    /// exit event reactivates it with `max(parent, child) + 1`.
    ///
    /// If the child panicked, the panic is re-raised here (like
    /// `std::thread::JoinHandle::join().unwrap()`); other runtime errors
    /// raise a [`DetError`] panic. Use [`DetJoinHandle::try_join`] to
    /// handle both as values.
    pub fn join(mut self) -> T {
        match self.join_inner() {
            Ok(v) => v,
            Err(DetError::ChildPanicked { payload, .. }) => resume_unwind(payload),
            Err(e) => raise(e),
        }
    }

    /// Fallible join: [`DetError::ChildPanicked`] carries a panicking
    /// child's payload (inspect with [`crate::panic_message`] or downcast
    /// to e.g. [`crate::fault::InjectedPanic`]); stall-watchdog and
    /// misuse errors are returned typed as well.
    pub fn try_join(mut self) -> Result<T, DetError> {
        self.join_inner()
    }

    fn join_inner(&mut self) -> Result<T, DetError> {
        let (inner, me) = try_current()?;
        if !Arc::ptr_eq(&inner, &self.rt.inner) {
            return Err(DetError::WrongRuntime);
        }
        let reg = &inner.registry;
        fault_point(&inner, me);
        reg.wait_for_turn(me)?;
        let finished_now = reg.transition(|_| {
            if reg.state(self.tid) == ThreadState::Finished {
                true
            } else {
                reg.set_state(me, ThreadState::Blocked);
                inner.join_waiters.lock().insert(self.tid, me);
                false
            }
        });
        if finished_now {
            let c = reg.clock(me).max(reg.exit_clock(self.tid)) + 1;
            reg.set_clock(me, c);
        } else {
            let mut timer = reg.stall_timer();
            let mut g = inner.join_cv_mutex.lock();
            while reg.state(me) != ThreadState::Active {
                let timed_out = inner.join_cv.wait_for(&mut g, timer.poll_interval());
                if timed_out && timer.expired(reg) {
                    match reg.on_blocked_stall(me) {
                        Ok(()) => {} // culprit evicted; child may now exit
                        Err(e) => {
                            drop(g);
                            // Un-block ourselves and withdraw the waiter
                            // entry so a late child exit does not touch a
                            // parent that already gave up.
                            reg.transition(|_| {
                                inner.join_waiters.lock().remove(&self.tid);
                                if reg.state(me) == ThreadState::Blocked {
                                    reg.set_state(me, ThreadState::Active);
                                }
                            });
                            return Err(e);
                        }
                    }
                }
            }
        }
        let handle = self.std.take().expect("joined twice");
        match handle.join() {
            Ok(Ok(v)) => Ok(v),
            // The closure panicked and catch_unwind captured the payload.
            Ok(Err(payload)) => Err(DetError::ChildPanicked {
                tid: self.tid,
                payload,
            }),
            // Panic escaped catch_unwind (i.e. inside det_exit) — still
            // surface it rather than poison the caller.
            Err(payload) => Err(DetError::ChildPanicked {
                tid: self.tid,
                payload,
            }),
        }
    }
}

impl<T> Drop for DetJoinHandle<T> {
    fn drop(&mut self) {
        if self.std.take().is_some() {
            // Never joined: detach. No join_waiters entry can exist for an
            // unjoined child (join_inner inserts it and always consumes the
            // handle), but withdraw defensively so a logic slip elsewhere
            // can never redirect a wake-up at a dead parent.
            self.rt.inner.join_waiters.lock().remove(&self.tid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_join_returns_value_and_orders_clocks() {
        let rt = DetRuntime::with_defaults();
        rt.tick(10);
        let h = rt.spawn(|| {
            tick(5);
            42
        });
        assert_eq!(h.join(), 42);
        // Parent clock advanced past child's exit clock.
        assert!(rt.clock() > 10);
    }

    #[test]
    fn child_tids_are_sequential_in_spawn_order() {
        let rt = DetRuntime::with_defaults();
        let h1 = rt.spawn(|| 1);
        let h2 = rt.spawn(|| 2);
        assert_eq!(h1.det_tid(), 1);
        assert_eq!(h2.det_tid(), 2);
        // Join in reverse order still works (each join is its own event).
        assert_eq!(h2.join(), 2);
        assert_eq!(h1.join(), 1);
    }

    #[test]
    fn nested_spawn() {
        let rt = DetRuntime::with_defaults();
        let rt2 = rt.clone();
        let h = rt.spawn(move || {
            let inner = rt2.spawn(|| 7);
            inner.join() + 1
        });
        assert_eq!(h.join(), 8);
    }

    #[test]
    fn tick_free_function_matches_handle() {
        let rt = DetRuntime::with_defaults();
        tick(3);
        rt.tick(4);
        assert_eq!(rt.clock(), 7);
    }

    #[test]
    fn join_blocks_parent_without_stalling_children() {
        // Parent joins child A while child B does det work: B must not be
        // stalled by the blocked parent's low clock.
        let rt = DetRuntime::with_defaults();
        let slow = rt.spawn(|| {
            std::thread::sleep(std::time::Duration::from_millis(30));
            tick(1000);
            1
        });
        let busy = rt.spawn(|| {
            for _ in 0..100 {
                tick(10);
            }
            2
        });
        assert_eq!(slow.join(), 1);
        assert_eq!(busy.join(), 2);
    }

    #[test]
    fn tick_outside_runtime_panics() {
        let r = std::thread::spawn(|| tick(1)).join();
        assert!(r.is_err(), "tick on an unregistered thread must panic");
    }

    #[test]
    fn try_tick_outside_runtime_errors() {
        let r = std::thread::spawn(|| try_tick(1)).join().unwrap();
        assert!(matches!(r, Err(DetError::NotRegistered)));
    }

    #[test]
    fn retire_current_releases_workers() {
        let rt = DetRuntime::with_defaults();
        let h = rt.spawn(|| {
            tick(1);
            5
        });
        // Retire main: workers proceed even though main's clock is 0 and it
        // never ticks again. Then the handle can still be joined via the
        // std handle path... join() requires registration, so join first.
        let v = h.join();
        rt.retire_current();
        assert_eq!(v, 5);
    }

    #[test]
    fn child_panic_propagates_through_join() {
        let rt = DetRuntime::with_defaults();
        let h = rt.spawn(|| -> u32 { panic!("child exploded") });
        // join() re-raises the child's panic in the parent...
        let caught = catch_unwind(AssertUnwindSafe(|| h.join()));
        let payload = caught.expect_err("join must re-raise the child panic");
        assert_eq!(crate::panic_message(payload.as_ref()), "child exploded");
        // ...and the runtime is still healthy: spawn/join again.
        assert_eq!(rt.spawn(|| 9).join(), 9);
    }

    #[test]
    fn try_join_returns_child_panic_as_typed_error() {
        let rt = DetRuntime::with_defaults();
        let h = rt.spawn(|| -> u32 { panic!("typed boom") });
        let tid = h.det_tid();
        match h.try_join() {
            Err(DetError::ChildPanicked { tid: t, payload }) => {
                assert_eq!(t, tid);
                assert_eq!(crate::panic_message(payload.as_ref()), "typed boom");
            }
            other => panic!("expected ChildPanicked, got {other:?}"),
        }
        assert_eq!(rt.spawn(|| 1).join(), 1);
    }

    #[test]
    fn dropping_handle_detaches_without_wedging() {
        let rt = DetRuntime::with_defaults();
        {
            let _dropped = rt.spawn(|| {
                tick(2);
                "detached"
            });
        } // handle dropped unjoined here
          // The detached child exits on its own; the runtime keeps working.
        let h = rt.spawn(|| {
            tick(1);
            3
        });
        assert_eq!(h.join(), 3);
    }

    #[test]
    fn capacity_exhaustion_is_a_clean_error() {
        let rt = DetRuntime::new(DetConfig {
            max_threads: 2, // main + one child
            ..DetConfig::default()
        });
        let ok = rt.spawn(|| 1);
        match rt.try_spawn(|| 2) {
            Err(DetError::CapacityExhausted { capacity: 2 }) => {}
            Err(other) => panic!("expected CapacityExhausted, got {other:?}"),
            Ok(_) => panic!("expected CapacityExhausted, got a handle"),
        }
        // The failed spawn left arbitration healthy: the live child still
        // joins fine.
        assert_eq!(ok.join(), 1);
    }

    #[test]
    fn spawn_from_unregistered_thread_errors() {
        let rt = DetRuntime::with_defaults();
        let rt2 = rt.clone();
        let r = std::thread::spawn(move || rt2.try_spawn(|| 1).map(|_| ()))
            .join()
            .unwrap();
        assert!(matches!(r, Err(DetError::NotRegistered)));
    }

    #[test]
    fn cross_runtime_handle_misuse_is_a_typed_error() {
        // A thread registered with runtime B joining a handle from runtime
        // A must get WrongRuntime, not silently corrupt either arbiter.
        let rt_a = DetRuntime::with_defaults();
        let h = rt_a.spawn(|| 41);
        let misuse = std::thread::spawn(move || {
            let rt_b = DetRuntime::with_defaults();
            let verdict = matches!(h.try_join(), Err(DetError::WrongRuntime));
            rt_b.retire_current();
            verdict
        })
        .join()
        .unwrap();
        assert!(misuse, "expected WrongRuntime from the foreign join");
        // Runtime A is unharmed: its detached child exited cleanly and new
        // work proceeds.
        assert_eq!(rt_a.spawn(|| 5).join(), 5);
    }

    #[test]
    fn thread_snapshots_expose_state() {
        let rt = DetRuntime::with_defaults();
        let h = rt.spawn(|| {
            tick(7);
            0
        });
        h.join();
        let snaps = rt.thread_snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].tid, 0);
        assert_eq!(snaps[1].state, ThreadState::Finished);
        assert!(snaps[0].events >= 1, "join is a counted det event");
    }
}
