//! Per-thread logical clocks and the thread registry.
//!
//! Every registered thread owns a cache-line-padded atomic clock slot and a
//! state (`Active`, `Blocked`, `Finished`, `Evicted`). Deterministic events
//! use [`Registry::wait_for_turn`]: spin until this thread's `(clock, tid)`
//! is the minimum over all *active* threads — Kendo's turn rule as adopted
//! by DetLock.
//!
//! State transitions (spawn, exit, block, unblock, evict) are rare; they
//! take the transition mutex and bump a seqlock epoch so that arbitration
//! scans observe a consistent snapshot of the active set. Clock ticks are
//! plain atomic adds — the hot path the compiler pass emits costs one
//! `fetch_add`.
//!
//! # Stall watchdog
//!
//! The turn rule makes the whole runtime hostage to the minimum-clock
//! active thread: if that thread wedges (livelock, a non-deterministic wait
//! inside a det section, a bug in instrumented code), every other thread
//! spins forever. When a watchdog is configured
//! ([`Registry::with_watchdog`]), arbitration spins track the current
//! minimum `(clock, tid)` candidate; if the candidate makes no progress for
//! the configured timeout, the runtime captures a [`StallReport`] and
//! applies the configured [`StallAction`] — abort with diagnostics, surface
//! [`DetError::Stalled`], or deterministically evict the culprit so the
//! survivors proceed. Blocked waits (join, condvar, barrier) use the
//! coarser [`Registry::activity_stamp`]: if *no* clock or event counter in
//! the whole registry moves for a full timeout, the wait is stalled.
//!
//! The spin itself backs off spin → yield → park (`park_timeout`), so a
//! long wait costs microsleeps instead of a pegged core.

use crate::error::{DetError, StallAction, StallReport, ThreadSnapshot};
use detlock_shim::sync::Mutex;
use detlock_shim::CachePadded;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Thread lifecycle states as seen by the arbiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ThreadState {
    /// Slot not yet allocated.
    Inactive = 0,
    /// Participates in deterministic arbitration.
    Active = 1,
    /// Deterministically deactivated (barrier, join, condvar wait):
    /// excluded from arbitration until deterministically reactivated.
    Blocked = 2,
    /// Exited; excluded forever.
    Finished = 3,
    /// Forcibly retired by the stall watchdog ([`StallAction::Evict`]):
    /// excluded from arbitration forever; the thread's next deterministic
    /// event fails with [`DetError::Evicted`].
    Evicted = 4,
}

impl ThreadState {
    fn from_u8(v: u8) -> ThreadState {
        match v {
            1 => ThreadState::Active,
            2 => ThreadState::Blocked,
            3 => ThreadState::Finished,
            4 => ThreadState::Evicted,
            _ => ThreadState::Inactive,
        }
    }
}

/// A deterministic thread id: assigned in deterministic spawn order, used
/// as the arbitration tie-breaker.
pub type DetTid = u32;

/// Sentinel for "not waiting on any lock" in the `waiting_on` slot.
const NOT_WAITING: u64 = u64::MAX;

struct Slot {
    clock: CachePadded<AtomicU64>,
    state: CachePadded<AtomicU8>,
    /// Clock at exit (valid once `Finished`), consumed by join.
    exit_clock: AtomicU64,
    /// Deterministic events entered by this thread (diagnostics + fault
    /// injection coordinate).
    events: AtomicU64,
    /// Lock/barrier/condvar id currently waited on ([`NOT_WAITING`] if
    /// none); diagnostics only.
    waiting_on: AtomicU64,
}

/// The thread registry: clock slots, states, and the transition seqlock.
pub struct Registry {
    slots: Box<[Slot]>,
    /// Seqlock epoch: odd while a transition is in flight.
    epoch: AtomicU64,
    /// Serializes state transitions and tid allocation.
    transition: Mutex<u32>, // next tid
    /// `(timeout, action)` when the stall watchdog is enabled.
    watchdog: Option<(Duration, StallAction)>,
}

/// Progress tracker for *blocked* waits (join, condvar, barrier). The wait
/// is declared stalled when the registry-wide [`Registry::activity_stamp`]
/// is unchanged for the watchdog timeout. Obtain via
/// [`Registry::stall_timer`]; call [`StallTimer::expired`] between timed
/// condvar waits.
pub struct StallTimer {
    /// `None` when the watchdog is disabled (never expires).
    armed: Option<(Instant, u64)>,
    timeout: Duration,
}

impl StallTimer {
    /// A sensible interval for timed condvar waits between expiry checks.
    pub fn poll_interval(&self) -> Duration {
        if self.armed.is_some() {
            (self.timeout / 4).max(Duration::from_millis(1))
        } else {
            Duration::from_millis(100)
        }
    }

    /// True when the watchdog timeout elapsed with no registry-wide
    /// activity. Any clock tick or event entry anywhere resets the timer.
    pub fn expired(&mut self, reg: &Registry) -> bool {
        match &mut self.armed {
            None => false,
            Some((start, last_stamp)) => {
                let stamp = reg.activity_stamp();
                if stamp != *last_stamp {
                    *start = Instant::now();
                    *last_stamp = stamp;
                    false
                } else {
                    start.elapsed() >= self.timeout
                }
            }
        }
    }
}

impl Registry {
    /// Create a registry with capacity for `max_threads` thread slots and
    /// no stall watchdog (slots are not reused; registering more threads
    /// than this returns [`DetError::CapacityExhausted`]).
    pub fn new(max_threads: usize) -> Registry {
        Registry::with_watchdog(max_threads, None, StallAction::Abort)
    }

    /// Create a registry with a stall watchdog: if arbitration makes no
    /// progress for `timeout`, apply `action` (see the module docs).
    pub fn with_watchdog(
        max_threads: usize,
        timeout: Option<Duration>,
        action: StallAction,
    ) -> Registry {
        assert!(max_threads >= 1);
        let slots = (0..max_threads)
            .map(|_| Slot {
                clock: CachePadded::new(AtomicU64::new(0)),
                state: CachePadded::new(AtomicU8::new(ThreadState::Inactive as u8)),
                exit_clock: AtomicU64::new(0),
                events: AtomicU64::new(0),
                waiting_on: AtomicU64::new(NOT_WAITING),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Registry {
            slots,
            epoch: AtomicU64::new(0),
            transition: Mutex::new(0),
            watchdog: timeout.map(|t| (t, action)),
        }
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Run `f` under the transition lock with the epoch held odd, so
    /// concurrent arbitration scans retry instead of observing a torn
    /// active set. `f` receives the next-tid counter.
    ///
    /// `f` must not panic: a panic here would leave the epoch odd and wedge
    /// every future arbitration scan. All internal callers are
    /// panic-free; fallible work (capacity checks) returns through `R`.
    pub fn transition<R>(&self, f: impl FnOnce(&mut u32) -> R) -> R {
        let mut next = self.transition.lock();
        self.epoch.fetch_add(1, Ordering::AcqRel); // odd: unstable
        let r = f(&mut next);
        self.epoch.fetch_add(1, Ordering::AcqRel); // even: stable
        r
    }

    /// Register a new thread: allocates the next tid with the given start
    /// clock, or [`DetError::CapacityExhausted`] when every slot is taken.
    /// The capacity check happens *before* any arbitration state changes,
    /// so a failed registration leaves the registry fully healthy.
    pub fn register(&self, start_clock: u64) -> Result<DetTid, DetError> {
        self.transition(|next| {
            let tid = *next;
            if (tid as usize) >= self.slots.len() {
                return Err(DetError::CapacityExhausted {
                    capacity: self.slots.len(),
                });
            }
            *next += 1;
            let slot = &self.slots[tid as usize];
            slot.clock.store(start_clock, Ordering::Release);
            slot.state
                .store(ThreadState::Active as u8, Ordering::Release);
            Ok(tid)
        })
    }

    /// Current clock of a thread.
    #[inline]
    pub fn clock(&self, tid: DetTid) -> u64 {
        self.slots[tid as usize].clock.load(Ordering::Acquire)
    }

    /// Advance a thread's clock — the `tick` hot path.
    #[inline]
    pub fn tick(&self, tid: DetTid, amount: u64) {
        self.slots[tid as usize]
            .clock
            .fetch_add(amount, Ordering::AcqRel);
    }

    /// Overwrite a thread's clock (barrier reconciliation, join, signal —
    /// always inside a deterministic event).
    #[inline]
    pub fn set_clock(&self, tid: DetTid, value: u64) {
        self.slots[tid as usize]
            .clock
            .store(value, Ordering::Release);
    }

    /// Current state of a thread.
    #[inline]
    pub fn state(&self, tid: DetTid) -> ThreadState {
        ThreadState::from_u8(self.slots[tid as usize].state.load(Ordering::Acquire))
    }

    /// Set a thread's state. Call only inside [`Registry::transition`].
    #[inline]
    pub fn set_state(&self, tid: DetTid, state: ThreadState) {
        self.slots[tid as usize]
            .state
            .store(state as u8, Ordering::Release);
    }

    /// Record the exit clock (inside the exit transition).
    pub fn set_exit_clock(&self, tid: DetTid, clock: u64) {
        self.slots[tid as usize]
            .exit_clock
            .store(clock, Ordering::Release);
    }

    /// Exit clock of a finished thread.
    pub fn exit_clock(&self, tid: DetTid) -> u64 {
        self.slots[tid as usize].exit_clock.load(Ordering::Acquire)
    }

    /// Count a deterministic event entry for `tid`; returns the 0-based
    /// event index (the fault-injection coordinate).
    #[inline]
    pub fn bump_events(&self, tid: DetTid) -> u64 {
        self.slots[tid as usize]
            .events
            .fetch_add(1, Ordering::Relaxed)
    }

    /// Deterministic events entered by `tid` so far.
    pub fn events(&self, tid: DetTid) -> u64 {
        self.slots[tid as usize].events.load(Ordering::Relaxed)
    }

    /// Record (or clear, with `None`) the lock id `tid` is waiting on —
    /// diagnostics for [`StallReport`].
    #[inline]
    pub fn set_waiting(&self, tid: DetTid, lock: Option<u64>) {
        self.slots[tid as usize]
            .waiting_on
            .store(lock.unwrap_or(NOT_WAITING), Ordering::Relaxed);
    }

    /// Cheap registry-wide progress fingerprint: wrapping sum of every
    /// slot's clock and event counter. Any tick or event anywhere changes
    /// it (modulo wrap-around collisions, which only delay stall detection
    /// by one poll interval).
    pub fn activity_stamp(&self) -> u64 {
        let mut stamp = 0u64;
        for slot in self.slots.iter() {
            stamp = stamp
                .wrapping_add(slot.clock.load(Ordering::Relaxed))
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(slot.events.load(Ordering::Relaxed));
        }
        stamp
    }

    /// Snapshot every allocated slot (diagnostics; not epoch-validated).
    pub fn snapshot(&self) -> Vec<ThreadSnapshot> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                let state = ThreadState::from_u8(slot.state.load(Ordering::Acquire));
                if state == ThreadState::Inactive {
                    return None;
                }
                let waiting = slot.waiting_on.load(Ordering::Relaxed);
                Some(ThreadSnapshot {
                    tid: i as DetTid,
                    clock: slot.clock.load(Ordering::Acquire),
                    state,
                    events: slot.events.load(Ordering::Relaxed),
                    waiting_on: (waiting != NOT_WAITING).then_some(waiting),
                })
            })
            .collect()
    }

    /// Build a [`StallReport`] naming `waiter` (and optionally a culprit).
    pub fn stall_report(&self, waiter: DetTid, culprit: Option<DetTid>) -> StallReport {
        StallReport {
            waiter,
            culprit,
            timeout: self.watchdog.map(|(t, _)| t).unwrap_or_default(),
            threads: self.snapshot(),
        }
    }

    /// Forcibly retire `tid` from arbitration ([`ThreadState::Evicted`]).
    pub fn evict(&self, tid: DetTid) {
        self.transition(|_| self.set_state(tid, ThreadState::Evicted));
    }

    /// The minimum `(clock, tid)` over active threads, if any — the thread
    /// currently holding (or about to take) the turn. Diagnostic scan, not
    /// epoch-validated.
    pub fn min_active(&self) -> Option<(u64, DetTid)> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                ThreadState::from_u8(s.state.load(Ordering::Acquire)) == ThreadState::Active
            })
            .map(|(i, s)| (s.clock.load(Ordering::Acquire), i as DetTid))
            .min()
    }

    /// A [`StallTimer`] for blocked waits, armed iff the watchdog is
    /// enabled.
    pub fn stall_timer(&self) -> StallTimer {
        match self.watchdog {
            Some((timeout, _)) => StallTimer {
                armed: Some((Instant::now(), self.activity_stamp())),
                timeout,
            },
            None => StallTimer {
                armed: None,
                timeout: Duration::from_secs(0),
            },
        }
    }

    /// Apply the configured [`StallAction`] for a *blocked* wait whose
    /// [`StallTimer`] expired. `Ok(())` means the stall was handled by
    /// evicting the arbitration culprit and the caller should resume
    /// waiting; `Err` carries the report for the waiter to surface.
    pub fn on_blocked_stall(&self, waiter: DetTid) -> Result<(), DetError> {
        let action = self.watchdog.map(|(_, a)| a).unwrap_or_default();
        let culprit = self.min_active().map(|(_, t)| t).filter(|&t| t != waiter);
        match action {
            StallAction::Abort => {
                eprintln!("{}", self.stall_report(waiter, culprit));
                std::process::abort();
            }
            StallAction::Evict if culprit.is_some() => {
                // Retire the thread holding arbitration back; whatever the
                // waiter is blocked on may now make progress.
                self.evict(culprit.unwrap());
                Ok(())
            }
            _ => Err(DetError::Stalled(Box::new(
                self.stall_report(waiter, culprit),
            ))),
        }
    }

    /// One arbitration scan: does `(my_clock, tid)` currently hold the
    /// minimum over active threads? Returns `None` when a transition raced
    /// the scan (caller retries).
    fn scan_is_min(&self, tid: DetTid, my_clock: u64) -> Option<bool> {
        let e1 = self.epoch.load(Ordering::Acquire);
        if e1 % 2 == 1 {
            return None;
        }
        let me = (my_clock, tid);
        for (i, slot) in self.slots.iter().enumerate() {
            let i = i as u32;
            if i == tid {
                continue;
            }
            if ThreadState::from_u8(slot.state.load(Ordering::Acquire)) != ThreadState::Active {
                continue;
            }
            let other = (slot.clock.load(Ordering::Acquire), i);
            if other < me {
                let e2 = self.epoch.load(Ordering::Acquire);
                if e2 != e1 {
                    return None;
                }
                return Some(false);
            }
        }
        let e2 = self.epoch.load(Ordering::Acquire);
        if e2 != e1 {
            return None;
        }
        Some(true)
    }

    /// Wait until thread `tid` (with its current clock) holds the
    /// deterministic turn. The clock is re-read each scan, so callers that
    /// bump their own clock while waiting observe the new value.
    ///
    /// Backs off spin → yield → park, and (when the watchdog is enabled)
    /// tracks whether the minimum-clock candidate makes progress; a
    /// stalled candidate triggers the configured [`StallAction`]. Returns
    /// [`DetError::Evicted`] if this thread was evicted, or
    /// [`DetError::Stalled`] under [`StallAction::Error`].
    pub fn wait_for_turn(&self, tid: DetTid) -> Result<(), DetError> {
        // An evicted thread is out of arbitration entirely — its absence
        // from the active set would otherwise make the scan succeed
        // vacuously.
        if self.state(tid) == ThreadState::Evicted {
            return Err(DetError::Evicted { tid });
        }
        let mut spins = 0u64;
        // (start, last candidate) once the watchdog arms in the slow phase.
        let mut watch: Option<(Instant, Option<(u64, DetTid)>)> = None;
        loop {
            let my_clock = self.clock(tid);
            match self.scan_is_min(tid, my_clock) {
                Some(true) => return Ok(()),
                _ => {
                    spins += 1;
                    if spins < 64 {
                        std::hint::spin_loop();
                    } else if spins < 4096 {
                        std::thread::yield_now();
                    } else {
                        std::thread::park_timeout(Duration::from_micros(100));
                    }
                }
            }
            // Slow-phase bookkeeping only: eviction check + watchdog.
            if spins >= 64 && spins.is_multiple_of(128) {
                if self.state(tid) == ThreadState::Evicted {
                    return Err(DetError::Evicted { tid });
                }
                if let Some((timeout, action)) = self.watchdog {
                    let cand = self.min_active();
                    match &mut watch {
                        None => watch = Some((Instant::now(), cand)),
                        Some((start, last)) => {
                            if cand != *last {
                                *start = Instant::now();
                                *last = cand;
                            } else if start.elapsed() >= timeout {
                                let culprit = cand.map(|(_, t)| t).filter(|&t| t != tid);
                                match action {
                                    StallAction::Abort => {
                                        eprintln!("{}", self.stall_report(tid, culprit));
                                        std::process::abort();
                                    }
                                    StallAction::Error => {
                                        return Err(DetError::Stalled(Box::new(
                                            self.stall_report(tid, culprit),
                                        )));
                                    }
                                    StallAction::Evict => {
                                        match culprit {
                                            Some(c) => self.evict(c),
                                            // No other active thread yet we
                                            // don't have the turn: registry
                                            // is inconsistent; eviction
                                            // cannot help.
                                            None => {
                                                return Err(DetError::Stalled(Box::new(
                                                    self.stall_report(tid, None),
                                                )));
                                            }
                                        }
                                        watch = None;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Non-blocking turn probe (used by lock retry loops that interleave a
    /// clock bump per failed attempt).
    pub fn has_turn(&self, tid: DetTid) -> bool {
        let my_clock = self.clock(tid);
        matches!(self.scan_is_min(tid, my_clock), Some(true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn register_assigns_sequential_tids() {
        let r = Registry::new(4);
        assert_eq!(r.register(0).unwrap(), 0);
        assert_eq!(r.register(5).unwrap(), 1);
        assert_eq!(r.clock(1), 5);
        assert_eq!(r.state(0), ThreadState::Active);
        assert_eq!(r.state(3), ThreadState::Inactive);
    }

    #[test]
    fn capacity_exhaustion_is_a_typed_error_not_a_panic() {
        let r = Registry::new(1);
        r.register(0).unwrap();
        match r.register(0) {
            Err(DetError::CapacityExhausted { capacity: 1 }) => {}
            other => panic!("expected CapacityExhausted, got {other:?}"),
        }
        // Crucially the seqlock epoch is even again: scans still complete
        // (a panic inside `transition` would have wedged them forever).
        assert!(r.has_turn(0));
        // And a third attempt fails identically rather than corrupting.
        assert!(matches!(
            r.register(0),
            Err(DetError::CapacityExhausted { .. })
        ));
    }

    #[test]
    fn tick_and_set_clock() {
        let r = Registry::new(2);
        let t = r.register(0).unwrap();
        r.tick(t, 10);
        r.tick(t, 5);
        assert_eq!(r.clock(t), 15);
        r.set_clock(t, 100);
        assert_eq!(r.clock(t), 100);
    }

    #[test]
    fn turn_follows_min_clock_then_tid() {
        let r = Registry::new(3);
        let a = r.register(0).unwrap();
        let b = r.register(0).unwrap();
        // Equal clocks: lower tid wins.
        assert!(r.has_turn(a));
        assert!(!r.has_turn(b));
        r.tick(a, 10);
        assert!(!r.has_turn(a));
        assert!(r.has_turn(b));
    }

    #[test]
    fn blocked_finished_and_evicted_excluded_from_arbitration() {
        let r = Registry::new(4);
        let a = r.register(0).unwrap();
        let b = r.register(0).unwrap();
        let c = r.register(0).unwrap();
        r.transition(|_| r.set_state(a, ThreadState::Blocked));
        r.evict(c);
        assert!(r.has_turn(b), "blocked thread must not hold the turn open");
        assert_eq!(r.state(c), ThreadState::Evicted);
        r.transition(|_| {
            r.set_state(a, ThreadState::Finished);
            r.set_exit_clock(a, 42)
        });
        assert!(r.has_turn(b));
        assert_eq!(r.exit_clock(a), 42);
    }

    #[test]
    fn wait_for_turn_unblocks_when_other_passes() {
        let r = Arc::new(Registry::new(2));
        let a = r.register(0).unwrap();
        let b = r.register(0).unwrap();
        r.tick(b, 100); // b waits for a to pass 100
        let r2 = Arc::clone(&r);
        let h = std::thread::spawn(move || {
            r2.wait_for_turn(b).unwrap();
            r2.clock(b)
        });
        // Give the waiter a moment, then advance a past b.
        std::thread::sleep(std::time::Duration::from_millis(10));
        r.tick(a, 101);
        assert_eq!(h.join().unwrap(), 100);
        let _ = a;
    }

    #[test]
    fn scan_retries_during_transition_do_not_wedge() {
        // Hammer transitions while another thread spins for its turn.
        let r = Arc::new(Registry::new(8));
        let a = r.register(0).unwrap();
        let b = r.register(0).unwrap();
        r.tick(b, 50);
        let r2 = Arc::clone(&r);
        let h = std::thread::spawn(move || r2.wait_for_turn(b));
        for i in 0..1000 {
            r.transition(|_| i); // epoch churn
            if i == 500 {
                r.tick(a, 60);
            }
        }
        h.join().unwrap().unwrap();
    }

    #[test]
    fn watchdog_error_mode_reports_the_culprit() {
        // a holds the minimum clock and never moves; b's wait must time out
        // with a report naming a.
        let r = Registry::with_watchdog(2, Some(Duration::from_millis(40)), StallAction::Error);
        let a = r.register(0).unwrap();
        let b = r.register(10).unwrap();
        match r.wait_for_turn(b) {
            Err(DetError::Stalled(report)) => {
                assert_eq!(report.waiter, b);
                assert_eq!(report.culprit, Some(a));
                assert_eq!(report.threads.len(), 2);
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_evict_mode_unwedges_the_waiter() {
        let r = Registry::with_watchdog(2, Some(Duration::from_millis(40)), StallAction::Evict);
        let a = r.register(0).unwrap();
        let b = r.register(10).unwrap();
        // a is wedged; the watchdog evicts it and b proceeds.
        r.wait_for_turn(b).unwrap();
        assert_eq!(r.state(a), ThreadState::Evicted);
        // The evicted thread's own next wait fails typed.
        assert!(matches!(
            r.wait_for_turn(a),
            Err(DetError::Evicted { tid }) if tid == a
        ));
    }

    #[test]
    fn events_and_waiting_on_feed_snapshots() {
        let r = Registry::new(2);
        let t = r.register(3).unwrap();
        assert_eq!(r.bump_events(t), 0);
        assert_eq!(r.bump_events(t), 1);
        r.set_waiting(t, Some(7));
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].events, 2);
        assert_eq!(snap[0].waiting_on, Some(7));
        r.set_waiting(t, None);
        assert_eq!(r.snapshot()[0].waiting_on, None);
    }

    #[test]
    fn stall_timer_resets_on_activity() {
        let r = Registry::with_watchdog(2, Some(Duration::from_millis(30)), StallAction::Error);
        let t = r.register(0).unwrap();
        let mut timer = r.stall_timer();
        assert!(!timer.expired(&r));
        std::thread::sleep(Duration::from_millis(40));
        r.tick(t, 1); // activity: the timer must re-arm, not expire
        assert!(!timer.expired(&r));
        std::thread::sleep(Duration::from_millis(40));
        assert!(timer.expired(&r));
    }
}
