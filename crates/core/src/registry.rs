//! Per-thread logical clocks and the thread registry.
//!
//! Every registered thread owns a cache-line-padded atomic clock slot and a
//! state (`Active`, `Blocked`, `Finished`). Deterministic events use
//! [`Registry::wait_for_turn`]: spin until this thread's `(clock, tid)` is
//! the minimum over all *active* threads — Kendo's turn rule as adopted by
//! DetLock.
//!
//! State transitions (spawn, exit, block, unblock) are rare; they take the
//! transition mutex and bump a seqlock epoch so that arbitration scans
//! observe a consistent snapshot of the active set. Clock ticks are plain
//! atomic adds — the hot path the compiler pass emits costs one
//! `fetch_add`.

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Thread lifecycle states as seen by the arbiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ThreadState {
    /// Slot not yet allocated.
    Inactive = 0,
    /// Participates in deterministic arbitration.
    Active = 1,
    /// Deterministically deactivated (barrier, join, condvar wait):
    /// excluded from arbitration until deterministically reactivated.
    Blocked = 2,
    /// Exited; excluded forever.
    Finished = 3,
}

impl ThreadState {
    fn from_u8(v: u8) -> ThreadState {
        match v {
            1 => ThreadState::Active,
            2 => ThreadState::Blocked,
            3 => ThreadState::Finished,
            _ => ThreadState::Inactive,
        }
    }
}

/// A deterministic thread id: assigned in deterministic spawn order, used
/// as the arbitration tie-breaker.
pub type DetTid = u32;

struct Slot {
    clock: CachePadded<AtomicU64>,
    state: CachePadded<AtomicU8>,
    /// Clock at exit (valid once `Finished`), consumed by join.
    exit_clock: AtomicU64,
}

/// The thread registry: clock slots, states, and the transition seqlock.
pub struct Registry {
    slots: Box<[Slot]>,
    /// Seqlock epoch: odd while a transition is in flight.
    epoch: AtomicU64,
    /// Serializes state transitions and tid allocation.
    transition: Mutex<u32>, // next tid
}

impl Registry {
    /// Create a registry with capacity for `max_threads` thread slots
    /// (slots are not reused; a process spawning more deterministic threads
    /// than this panics).
    pub fn new(max_threads: usize) -> Registry {
        assert!(max_threads >= 1);
        let slots = (0..max_threads)
            .map(|_| Slot {
                clock: CachePadded::new(AtomicU64::new(0)),
                state: CachePadded::new(AtomicU8::new(ThreadState::Inactive as u8)),
                exit_clock: AtomicU64::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Registry {
            slots,
            epoch: AtomicU64::new(0),
            transition: Mutex::new(0),
        }
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Run `f` under the transition lock with the epoch held odd, so
    /// concurrent arbitration scans retry instead of observing a torn
    /// active set. `f` receives the next-tid counter.
    pub fn transition<R>(&self, f: impl FnOnce(&mut u32) -> R) -> R {
        let mut next = self.transition.lock();
        self.epoch.fetch_add(1, Ordering::AcqRel); // odd: unstable
        let r = f(&mut next);
        self.epoch.fetch_add(1, Ordering::AcqRel); // even: stable
        r
    }

    /// Register a new thread (under [`Registry::transition`] externally or
    /// internally here): allocates the next tid with the given start clock.
    pub fn register(&self, start_clock: u64) -> DetTid {
        self.transition(|next| {
            let tid = *next;
            assert!(
                (tid as usize) < self.slots.len(),
                "thread capacity ({}) exhausted",
                self.slots.len()
            );
            *next += 1;
            let slot = &self.slots[tid as usize];
            slot.clock.store(start_clock, Ordering::Release);
            slot.state
                .store(ThreadState::Active as u8, Ordering::Release);
            tid
        })
    }

    /// Current clock of a thread.
    #[inline]
    pub fn clock(&self, tid: DetTid) -> u64 {
        self.slots[tid as usize].clock.load(Ordering::Acquire)
    }

    /// Advance a thread's clock — the `tick` hot path.
    #[inline]
    pub fn tick(&self, tid: DetTid, amount: u64) {
        self.slots[tid as usize]
            .clock
            .fetch_add(amount, Ordering::AcqRel);
    }

    /// Overwrite a thread's clock (barrier reconciliation, join, signal —
    /// always inside a deterministic event).
    #[inline]
    pub fn set_clock(&self, tid: DetTid, value: u64) {
        self.slots[tid as usize].clock.store(value, Ordering::Release);
    }

    /// Current state of a thread.
    #[inline]
    pub fn state(&self, tid: DetTid) -> ThreadState {
        ThreadState::from_u8(self.slots[tid as usize].state.load(Ordering::Acquire))
    }

    /// Set a thread's state. Call only inside [`Registry::transition`].
    #[inline]
    pub fn set_state(&self, tid: DetTid, state: ThreadState) {
        self.slots[tid as usize]
            .state
            .store(state as u8, Ordering::Release);
    }

    /// Record the exit clock (inside the exit transition).
    pub fn set_exit_clock(&self, tid: DetTid, clock: u64) {
        self.slots[tid as usize]
            .exit_clock
            .store(clock, Ordering::Release);
    }

    /// Exit clock of a finished thread.
    pub fn exit_clock(&self, tid: DetTid) -> u64 {
        self.slots[tid as usize].exit_clock.load(Ordering::Acquire)
    }

    /// One arbitration scan: does `(my_clock, tid)` currently hold the
    /// minimum over active threads? Returns `None` when a transition raced
    /// the scan (caller retries).
    fn scan_is_min(&self, tid: DetTid, my_clock: u64) -> Option<bool> {
        let e1 = self.epoch.load(Ordering::Acquire);
        if e1 % 2 == 1 {
            return None;
        }
        let me = (my_clock, tid);
        for (i, slot) in self.slots.iter().enumerate() {
            let i = i as u32;
            if i == tid {
                continue;
            }
            if ThreadState::from_u8(slot.state.load(Ordering::Acquire)) != ThreadState::Active {
                continue;
            }
            let other = (slot.clock.load(Ordering::Acquire), i);
            if other < me {
                let e2 = self.epoch.load(Ordering::Acquire);
                if e2 != e1 {
                    return None;
                }
                return Some(false);
            }
        }
        let e2 = self.epoch.load(Ordering::Acquire);
        if e2 != e1 {
            return None;
        }
        Some(true)
    }

    /// Spin until thread `tid` (with its current clock) holds the
    /// deterministic turn. The clock is re-read each scan, so callers that
    /// bump their own clock while waiting observe the new value.
    pub fn wait_for_turn(&self, tid: DetTid) {
        let mut spins = 0u32;
        loop {
            let my_clock = self.clock(tid);
            match self.scan_is_min(tid, my_clock) {
                Some(true) => return,
                _ => {
                    spins += 1;
                    if spins < 64 {
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// Non-blocking turn probe (used by lock retry loops that interleave a
    /// clock bump per failed attempt).
    pub fn has_turn(&self, tid: DetTid) -> bool {
        let my_clock = self.clock(tid);
        matches!(self.scan_is_min(tid, my_clock), Some(true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn register_assigns_sequential_tids() {
        let r = Registry::new(4);
        assert_eq!(r.register(0), 0);
        assert_eq!(r.register(5), 1);
        assert_eq!(r.clock(1), 5);
        assert_eq!(r.state(0), ThreadState::Active);
        assert_eq!(r.state(3), ThreadState::Inactive);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn capacity_exhaustion_panics() {
        let r = Registry::new(1);
        r.register(0);
        r.register(0);
    }

    #[test]
    fn tick_and_set_clock() {
        let r = Registry::new(2);
        let t = r.register(0);
        r.tick(t, 10);
        r.tick(t, 5);
        assert_eq!(r.clock(t), 15);
        r.set_clock(t, 100);
        assert_eq!(r.clock(t), 100);
    }

    #[test]
    fn turn_follows_min_clock_then_tid() {
        let r = Registry::new(3);
        let a = r.register(0);
        let b = r.register(0);
        // Equal clocks: lower tid wins.
        assert!(r.has_turn(a));
        assert!(!r.has_turn(b));
        r.tick(a, 10);
        assert!(!r.has_turn(a));
        assert!(r.has_turn(b));
    }

    #[test]
    fn blocked_and_finished_excluded_from_arbitration() {
        let r = Registry::new(3);
        let a = r.register(0);
        let b = r.register(0);
        r.transition(|_| r.set_state(a, ThreadState::Blocked));
        assert!(r.has_turn(b), "blocked thread must not hold the turn open");
        r.transition(|_| {
            r.set_state(a, ThreadState::Finished);
            r.set_exit_clock(a, 42)
        });
        assert!(r.has_turn(b));
        assert_eq!(r.exit_clock(a), 42);
    }

    #[test]
    fn wait_for_turn_unblocks_when_other_passes() {
        let r = Arc::new(Registry::new(2));
        let a = r.register(0);
        let b = r.register(0);
        r.tick(b, 100); // b waits for a to pass 100
        let r2 = Arc::clone(&r);
        let h = std::thread::spawn(move || {
            r2.wait_for_turn(b);
            r2.clock(b)
        });
        // Give the waiter a moment, then advance a past b.
        std::thread::sleep(std::time::Duration::from_millis(10));
        r.tick(a, 101);
        assert_eq!(h.join().unwrap(), 100);
        let _ = a;
    }

    #[test]
    fn scan_retries_during_transition_do_not_wedge() {
        // Hammer transitions while another thread spins for its turn.
        let r = Arc::new(Registry::new(8));
        let a = r.register(0);
        let b = r.register(0);
        r.tick(b, 50);
        let r2 = Arc::clone(&r);
        let h = std::thread::spawn(move || r2.wait_for_turn(b));
        for i in 0..1000 {
            r.transition(|_| i); // epoch churn
            if i == 500 {
                r.tick(a, 60);
            }
        }
        h.join().unwrap();
    }
}
