//! Deterministic condition variable.
//!
//! The paper lists condition variables as unimplemented ("we have not yet
//! implemented other synchronization operations, such as condition
//! variables", §V); this is the natural extension within the same
//! framework:
//!
//! * `wait` is a deterministic event: at its turn the waiter deactivates,
//!   enqueues itself (the queue order is therefore timing-independent), and
//!   releases the mutex;
//! * `signal` is a deterministic event: at its turn the signaler dequeues
//!   the *front* waiter, reactivates it with clock `signaler + 1`, and the
//!   woken thread re-acquires the mutex through the normal deterministic
//!   lock protocol;
//! * `broadcast` reactivates every queued waiter (clock ties are broken by
//!   tid as usual).

use crate::mutex::{DetMutex, DetMutexGuard};
use crate::registry::ThreadState;
use crate::runtime::{current, fault_point, raise, wait_turn, DetRuntime};
use detlock_shim::sync::{Condvar, Mutex};
use std::collections::VecDeque;

struct CvState {
    queue: VecDeque<u32>,
}

/// A deterministic condition variable (use with [`DetMutex`]).
pub struct DetCondvar {
    rt: DetRuntime,
    id: u64,
    state: Mutex<CvState>,
    cv: Condvar,
}

impl DetCondvar {
    /// Create a condition variable owned by `rt`.
    pub fn new(rt: &DetRuntime) -> DetCondvar {
        DetCondvar {
            rt: rt.clone(),
            id: rt.alloc_lock_id(),
            state: Mutex::new(CvState {
                queue: VecDeque::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Deterministically wait: atomically (in the deterministic order)
    /// release the guard and block; on wake-up, re-acquire the mutex.
    ///
    /// As with POSIX condvars, spurious wake-ups are absorbed internally;
    /// callers should still loop on their predicate because another thread
    /// may win the mutex between the signal and the re-acquisition.
    pub fn wait<'a, T>(&self, guard: DetMutexGuard<'a, T>) -> DetMutexGuard<'a, T> {
        let (inner, me) = current();
        debug_assert!(std::sync::Arc::ptr_eq(&inner, &self.rt.inner));
        let reg = &inner.registry;
        // The wait is a det event at our turn.
        fault_point(&inner, me);
        reg.set_waiting(me, Some(self.id));
        wait_turn(&inner, me);
        let mutex: &'a DetMutex<T> = DetMutexGuard::mutex(&guard);
        {
            let mut st = self.state.lock();
            reg.transition(|_| reg.set_state(me, ThreadState::Blocked));
            st.queue.push_back(me);
            // Release the mutex only after we are enqueued+blocked, so a
            // signaler that wins the mutex next deterministically sees us.
            drop(guard);
            // Block until a signaler reactivates us.
            let mut timer = reg.stall_timer();
            while reg.state(me) != ThreadState::Active {
                let timed_out = self.cv.wait_for(&mut st, timer.poll_interval());
                if timed_out && reg.state(me) != ThreadState::Active && timer.expired(reg) {
                    match reg.on_blocked_stall(me) {
                        Ok(()) => {} // culprit evicted; a signaler may now run
                        Err(e) => {
                            // Withdraw from the queue and reactivate before
                            // erroring, so a late signal can't wake a ghost.
                            st.queue.retain(|&t| t != me);
                            drop(st);
                            reg.transition(|_| {
                                if reg.state(me) == ThreadState::Blocked {
                                    reg.set_state(me, ThreadState::Active);
                                }
                            });
                            reg.set_waiting(me, None);
                            raise(e);
                        }
                    }
                }
            }
        }
        reg.set_waiting(me, None);
        mutex.lock()
    }

    /// Deterministically wake the front waiter (no-op when none).
    pub fn signal(&self) {
        self.wake(1);
    }

    /// Deterministically wake every queued waiter.
    pub fn broadcast(&self) {
        self.wake(usize::MAX);
    }

    fn wake(&self, max: usize) {
        let (inner, me) = current();
        debug_assert!(std::sync::Arc::ptr_eq(&inner, &self.rt.inner));
        let reg = &inner.registry;
        fault_point(&inner, me);
        wait_turn(&inner, me);
        let my_clock = reg.clock(me);
        let mut st = self.state.lock();
        let count = st.queue.len().min(max);
        if count > 0 {
            let woken: Vec<u32> = st.queue.drain(..count).collect();
            reg.transition(|_| {
                for &t in &woken {
                    // Only reactivate waiters still Blocked: a queued tid
                    // that was evicted (or already gave up on a stall) must
                    // not be resurrected into arbitration.
                    if reg.state(t) == ThreadState::Blocked {
                        reg.set_clock(t, my_clock + 1);
                        reg.set_state(t, ThreadState::Active);
                    }
                }
            });
            self.cv.notify_all();
        }
        drop(st);
        reg.tick(me, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{tick, DetRuntime};
    use std::sync::Arc;

    #[test]
    fn signal_wakes_one_waiter() {
        let rt = DetRuntime::with_defaults();
        let m = Arc::new(DetMutex::new(&rt, false));
        let cv = Arc::new(DetCondvar::new(&rt));
        let m2 = Arc::clone(&m);
        let cv2 = Arc::clone(&cv);
        let waiter = rt.spawn(move || {
            tick(1);
            let mut g = m2.lock();
            while !*g {
                g = cv2.wait(g);
            }
            42
        });
        // Give the waiter time to enqueue, then set + signal.
        std::thread::sleep(std::time::Duration::from_millis(20));
        tick(100);
        {
            let mut g = m.lock();
            *g = true;
        }
        cv.signal();
        assert_eq!(waiter.join(), 42);
    }

    #[test]
    fn broadcast_wakes_all() {
        let rt = DetRuntime::with_defaults();
        let m = Arc::new(DetMutex::new(&rt, 0usize));
        let cv = Arc::new(DetCondvar::new(&rt));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let m = Arc::clone(&m);
            let cv = Arc::clone(&cv);
            handles.push(rt.spawn(move || {
                tick(2);
                let mut g = m.lock();
                while *g == 0 {
                    g = cv.wait(g);
                }
                *g += 1;
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(30));
        tick(50);
        {
            let mut g = m.lock();
            *g = 1;
        }
        cv.broadcast();
        for h in handles {
            h.join();
        }
        assert_eq!(*m.lock(), 4);
    }

    #[test]
    fn producer_consumer_queue_is_deterministic() {
        fn run(noise: bool) -> Vec<(u64, u32)> {
            let rt = DetRuntime::new(crate::runtime::DetConfig {
                record_trace: true,
                ..Default::default()
            });
            let q = Arc::new(DetMutex::new(&rt, VecDeque::<i64>::new()));
            let cv = Arc::new(DetCondvar::new(&rt));
            let mut handles = Vec::new();
            // Two consumers.
            for t in 0..2u64 {
                let q = Arc::clone(&q);
                let cv = Arc::clone(&cv);
                handles.push(rt.spawn(move || {
                    let mut got = 0;
                    while got < 20 {
                        tick(3 + t);
                        let mut g = q.lock();
                        while g.is_empty() {
                            g = cv.wait(g);
                        }
                        g.pop_front();
                        got += 1;
                    }
                }));
            }
            // One producer.
            let q2 = Arc::clone(&q);
            let cv2 = Arc::clone(&cv);
            handles.push(rt.spawn(move || {
                for i in 0..40 {
                    tick(5);
                    if noise && i % 7 == 0 {
                        std::thread::sleep(std::time::Duration::from_micros(150));
                    }
                    {
                        let mut g = q2.lock();
                        g.push_back(i);
                    }
                    cv2.signal();
                }
            }));
            for h in handles {
                h.join();
            }
            rt.trace_events().iter().map(|e| (e.lock, e.tid)).collect()
        }
        let a = run(false);
        let b = run(true);
        assert_eq!(a, b, "condvar wake/acquire order must be reproducible");
    }
}
