//! Typed errors and stall diagnostics for the deterministic runtime.
//!
//! The failure model (DESIGN.md §"Failure model"): every way a
//! deterministic program can go wrong — a panicking child, an exhausted
//! registry, a wedged thread starving the arbiter — must surface as a
//! [`DetError`] or a diagnosable abort, never as a silent deadlock. Kendo's
//! min-clock turn rule makes the runtime *globally* sensitive to a single
//! thread's failure (every other thread waits on the minimum clock), so the
//! runtime treats fault handling as part of the protocol rather than an
//! afterthought.

use crate::registry::{DetTid, ThreadState};
use std::any::Any;
use std::fmt;
use std::time::Duration;

/// What the stall watchdog does when it concludes the arbiter is wedged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StallAction {
    /// Dump the [`StallReport`] to stderr and abort the process. The
    /// default: a wedged deterministic program has no useful continuation,
    /// and failing loudly beats hanging CI for hours.
    #[default]
    Abort,
    /// Surface [`DetError::Stalled`] from the waiting operation. Infallible
    /// APIs (e.g. [`crate::DetMutex::lock`]) raise it as a panic carrying
    /// the `DetError` payload, which the runtime's panic safety net turns
    /// into an `Err` at the joining parent.
    Error,
    /// Graceful degradation: deterministically retire the wedged thread
    /// from arbitration (state [`ThreadState::Evicted`]) so the remaining
    /// threads make progress. The evicted thread's next deterministic event
    /// fails with [`DetError::Evicted`]. Determinism of the *current run*
    /// is preserved for the surviving threads' relative order, but the run
    /// as a whole is no longer reproducible — eviction is triggered by
    /// wall-clock time.
    Evict,
}

/// Per-thread state captured in a [`StallReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadSnapshot {
    /// Deterministic thread id.
    pub tid: DetTid,
    /// Logical clock at capture time.
    pub clock: u64,
    /// Arbitration state at capture time.
    pub state: ThreadState,
    /// Number of deterministic events this thread has entered.
    pub events: u64,
    /// Runtime-assigned id of the lock/barrier/condvar the thread is
    /// currently waiting on, if any.
    pub waiting_on: Option<u64>,
}

/// Diagnostic snapshot produced when the watchdog suspects a deadlock.
#[derive(Debug, Clone)]
pub struct StallReport {
    /// The thread whose wait timed out.
    pub waiter: DetTid,
    /// The thread the waiter identified as holding arbitration back
    /// (the minimum-clock active thread that made no progress), when the
    /// stall was observed inside an arbitration spin.
    pub culprit: Option<DetTid>,
    /// The configured watchdog timeout that elapsed.
    pub timeout: Duration,
    /// State of every registered thread at capture time.
    pub threads: Vec<ThreadSnapshot>,
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "deterministic runtime stalled: tid {} made no progress for {:?}{}",
            self.waiter,
            self.timeout,
            match self.culprit {
                Some(c) => format!(" (suspected culprit: tid {c})"),
                None => String::new(),
            }
        )?;
        writeln!(f, "  tid  state      clock        events   waiting-on")?;
        for t in &self.threads {
            writeln!(
                f,
                "  {:<4} {:<10} {:<12} {:<8} {}",
                t.tid,
                format!("{:?}", t.state),
                t.clock,
                t.events,
                match t.waiting_on {
                    Some(id) => format!("lock {id}"),
                    None => "-".to_string(),
                }
            )?;
        }
        Ok(())
    }
}

/// Errors surfaced by the deterministic runtime.
///
/// Not `Clone`/`PartialEq`: [`DetError::ChildPanicked`] carries the child's
/// raw panic payload so callers can rethrow it (`resume_unwind`) or inspect
/// it. Use [`panic_message`] to extract a human-readable message.
pub enum DetError {
    /// The registry's fixed thread capacity was exhausted; raise
    /// `DetConfig::max_threads`. Returned *before* any arbitration state is
    /// touched, so the runtime stays healthy.
    CapacityExhausted {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The calling OS thread is not registered with any deterministic
    /// runtime.
    NotRegistered,
    /// The calling thread is registered, but with a *different*
    /// `DetRuntime` than the object it invoked belongs to.
    WrongRuntime,
    /// A joined child terminated by panicking; the payload is the child's
    /// panic value.
    ChildPanicked {
        /// The child's deterministic tid.
        tid: DetTid,
        /// The panic payload (e.g. a `&str`, `String`, or
        /// [`crate::fault::InjectedPanic`]).
        payload: Box<dyn Any + Send + 'static>,
    },
    /// The stall watchdog fired in [`StallAction::Error`] mode (or a
    /// blocked wait timed out without global progress).
    Stalled(Box<StallReport>),
    /// The calling thread was evicted from arbitration by the watchdog
    /// ([`StallAction::Evict`]) and attempted another deterministic event.
    Evicted {
        /// The evicted thread's tid.
        tid: DetTid,
    },
    /// A `DetPool` allocation found no free slot.
    PoolExhausted {
        /// The pool's fixed capacity.
        capacity: usize,
    },
    /// The OS refused to spawn the backing thread.
    SpawnFailed {
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

/// Best-effort extraction of a human-readable message from a panic payload
/// (as produced by `catch_unwind` or carried by
/// [`DetError::ChildPanicked`]).
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(ip) = payload.downcast_ref::<crate::fault::InjectedPanic>() {
        ip.to_string()
    } else if let Some(e) = payload.downcast_ref::<DetError>() {
        e.to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

impl fmt::Display for DetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetError::CapacityExhausted { capacity } => write!(
                f,
                "deterministic thread capacity ({capacity}) exhausted; raise DetConfig::max_threads"
            ),
            DetError::NotRegistered => {
                write!(f, "calling thread is not registered with a DetRuntime")
            }
            DetError::WrongRuntime => {
                write!(f, "calling thread belongs to a different DetRuntime")
            }
            DetError::ChildPanicked { tid, payload } => write!(
                f,
                "deterministic thread {tid} panicked: {}",
                panic_message(payload.as_ref())
            ),
            DetError::Stalled(report) => write!(f, "{report}"),
            DetError::Evicted { tid } => write!(
                f,
                "thread {tid} was evicted from deterministic arbitration by the stall watchdog"
            ),
            DetError::PoolExhausted { capacity } => {
                write!(f, "deterministic pool exhausted (capacity {capacity})")
            }
            DetError::SpawnFailed { source } => {
                write!(f, "failed to spawn OS thread: {source}")
            }
        }
    }
}

impl fmt::Debug for DetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Same as Display, prefixed with the variant name where it isn't
        // obvious; the payload itself is not Debug.
        write!(f, "DetError::")?;
        match self {
            DetError::CapacityExhausted { .. } => write!(f, "CapacityExhausted({self})"),
            DetError::NotRegistered => write!(f, "NotRegistered"),
            DetError::WrongRuntime => write!(f, "WrongRuntime"),
            DetError::ChildPanicked { tid, payload } => write!(
                f,
                "ChildPanicked {{ tid: {tid}, payload: {:?} }}",
                panic_message(payload.as_ref())
            ),
            DetError::Stalled(r) => {
                write!(f, "Stalled(waiter={}, culprit={:?})", r.waiter, r.culprit)
            }
            DetError::Evicted { tid } => write!(f, "Evicted {{ tid: {tid} }}"),
            DetError::PoolExhausted { capacity } => {
                write!(f, "PoolExhausted {{ capacity: {capacity} }}")
            }
            DetError::SpawnFailed { source } => write!(f, "SpawnFailed {{ source: {source:?} }}"),
        }
    }
}

impl std::error::Error for DetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DetError::SpawnFailed { source } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DetError::CapacityExhausted { capacity: 4 };
        assert!(e.to_string().contains("capacity"));
        assert!(e.to_string().contains('4'));
        let e = DetError::ChildPanicked {
            tid: 3,
            payload: Box::new("boom"),
        };
        assert!(e.to_string().contains("boom"));
        assert!(format!("{e:?}").contains("ChildPanicked"));
    }

    #[test]
    fn panic_message_downcasts() {
        assert_eq!(panic_message(&"x"), "x");
        assert_eq!(panic_message(&String::from("y")), "y");
        assert_eq!(panic_message(&42u32), "<non-string panic payload>");
    }

    #[test]
    fn stall_report_renders_all_threads() {
        let r = StallReport {
            waiter: 1,
            culprit: Some(0),
            timeout: Duration::from_millis(50),
            threads: vec![
                ThreadSnapshot {
                    tid: 0,
                    clock: 7,
                    state: ThreadState::Active,
                    events: 2,
                    waiting_on: None,
                },
                ThreadSnapshot {
                    tid: 1,
                    clock: 12,
                    state: ThreadState::Active,
                    events: 5,
                    waiting_on: Some(3),
                },
            ],
        };
        let s = r.to_string();
        assert!(s.contains("culprit: tid 0"));
        assert!(s.contains("lock 3"));
        assert!(s.lines().count() >= 4);
    }
}
