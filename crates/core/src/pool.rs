//! Deterministic memory pool — the paper's deterministic `malloc`.
//!
//! §III-B: "functions which internally use locks, such as `malloc` ... we
//! provide our own implementation which replaces the locks with our own
//! deterministic locks." [`DetPool`] is a fixed-capacity slab whose
//! free-list is guarded by a [`DetMutex`], so the *sequence of slot indices
//! handed out* — the addresses a deterministic malloc returns — is itself a
//! deterministic function of the program.

use crate::error::DetError;
use crate::mutex::DetMutex;
use crate::runtime::DetRuntime;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut};

/// A fixed-capacity deterministic object pool.
pub struct DetPool<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    free: DetMutex<Vec<u32>>,
}

unsafe impl<T: Send> Send for DetPool<T> {}
unsafe impl<T: Send> Sync for DetPool<T> {}

impl<T> DetPool<T> {
    /// Create a pool with `capacity` slots.
    pub fn new(rt: &DetRuntime, capacity: usize) -> DetPool<T> {
        assert!(capacity > 0 && capacity <= u32::MAX as usize);
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        // LIFO free list: slot 0 on top, matching a bump-then-recycle
        // allocator's locality.
        let free: Vec<u32> = (0..capacity as u32).rev().collect();
        DetPool {
            slots,
            free: DetMutex::new(rt, free),
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of currently free slots (deterministic event: takes the det
    /// lock).
    pub fn free_count(&self) -> usize {
        self.free.lock().len()
    }

    /// Deterministically allocate a slot holding `value`; `None` when the
    /// pool is exhausted (exhaustion is deterministic too).
    pub fn alloc(&self, value: T) -> Option<DetPoolBox<'_, T>> {
        let idx = {
            let mut free = self.free.lock();
            free.pop()
        }?;
        unsafe {
            (*self.slots[idx as usize].get()).write(value);
        }
        Some(DetPoolBox { pool: self, idx })
    }

    /// [`DetPool::alloc`] with a typed error: exhaustion surfaces as
    /// [`DetError::PoolExhausted`] carrying the capacity, fitting `?`-style
    /// propagation alongside the runtime's other `DetError`s.
    pub fn try_alloc(&self, value: T) -> Result<DetPoolBox<'_, T>, DetError> {
        self.alloc(value).ok_or(DetError::PoolExhausted {
            capacity: self.capacity(),
        })
    }
}

impl<T> Drop for DetPool<T> {
    fn drop(&mut self) {
        // Any slot not on the free list still holds a live value; but
        // DetPoolBox borrows the pool, so all boxes were dropped before the
        // pool can drop — every slot is free and uninitialized. Nothing to
        // do.
    }
}

/// Owning handle to a pool slot; returns the slot on drop (a deterministic
/// event).
pub struct DetPoolBox<'p, T> {
    pool: &'p DetPool<T>,
    idx: u32,
}

impl<T> DetPoolBox<'_, T> {
    /// The slot index — the "address" a deterministic malloc returns; equal
    /// across runs for the same program.
    pub fn slot(&self) -> u32 {
        self.idx
    }
}

impl<T> Deref for DetPoolBox<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { (*self.pool.slots[self.idx as usize].get()).assume_init_ref() }
    }
}

impl<T> DerefMut for DetPoolBox<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { (*self.pool.slots[self.idx as usize].get()).assume_init_mut() }
    }
}

impl<T> Drop for DetPoolBox<'_, T> {
    fn drop(&mut self) {
        unsafe {
            (*self.pool.slots[self.idx as usize].get()).assume_init_drop();
        }
        let mut free = self.pool.free.lock();
        free.push(self.idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{tick, DetRuntime};
    use std::sync::Arc;

    #[test]
    fn alloc_free_round_trip() {
        let rt = DetRuntime::with_defaults();
        let pool: DetPool<String> = DetPool::new(&rt, 4);
        assert_eq!(pool.capacity(), 4);
        assert_eq!(pool.free_count(), 4);
        {
            let mut b = pool.alloc("hello".to_string()).unwrap();
            b.push_str(" world");
            assert_eq!(&*b, "hello world");
            assert_eq!(pool.free_count(), 3);
        }
        assert_eq!(pool.free_count(), 4);
    }

    #[test]
    fn exhaustion_returns_none() {
        let rt = DetRuntime::with_defaults();
        let pool: DetPool<u8> = DetPool::new(&rt, 2);
        let a = pool.alloc(1).unwrap();
        let b = pool.alloc(2).unwrap();
        assert!(pool.alloc(3).is_none());
        assert!(matches!(
            pool.try_alloc(3),
            Err(DetError::PoolExhausted { capacity: 2 })
        ));
        drop(a);
        assert!(pool.alloc(4).is_some());
        drop(b);
    }

    #[test]
    fn slot_reuse_is_lifo() {
        let rt = DetRuntime::with_defaults();
        let pool: DetPool<u8> = DetPool::new(&rt, 3);
        let a = pool.alloc(1).unwrap();
        let s0 = a.slot();
        drop(a);
        let b = pool.alloc(2).unwrap();
        assert_eq!(b.slot(), s0);
    }

    #[test]
    fn allocation_sequence_deterministic_under_contention() {
        fn run(noise: bool) -> Vec<(u32, u32)> {
            let rt = DetRuntime::with_defaults();
            let pool: Arc<DetPool<u64>> = Arc::new(DetPool::new(&rt, 16));
            let log: Arc<detlock_shim::sync::Mutex<Vec<(u32, u32)>>> =
                Arc::new(detlock_shim::sync::Mutex::new(Vec::new()));
            let mut handles = Vec::new();
            for t in 0..3u32 {
                let pool = Arc::clone(&pool);
                let log = Arc::clone(&log);
                handles.push(rt.spawn(move || {
                    let mut held = Vec::new();
                    for i in 0..40u64 {
                        tick(3 + t as u64);
                        if noise && i % 11 == t as u64 {
                            std::thread::sleep(std::time::Duration::from_micros(80));
                        }
                        if let Some(b) = pool.alloc(i) {
                            log.lock().push((t, b.slot()));
                            held.push(b);
                        }
                        if held.len() > 2 {
                            tick(1);
                            held.remove(0); // free the oldest (det event)
                        }
                    }
                }));
            }
            for h in handles {
                h.join();
            }
            let v = log.lock().clone();
            v
        }
        // Note: the *per-thread* subsequences of (tid, slot) are
        // deterministic because slot handout order is deterministic; the
        // interleaving of log appends is not (the log mutex is ordinary).
        // Compare per-thread projections.
        let project = |v: Vec<(u32, u32)>| -> Vec<Vec<u32>> {
            (0..3)
                .map(|t| {
                    v.iter()
                        .filter(|(tt, _)| *tt == t)
                        .map(|(_, s)| *s)
                        .collect()
                })
                .collect()
        };
        let a = project(run(false));
        let b = project(run(true));
        assert_eq!(a, b, "per-thread slot sequences must be reproducible");
    }

    #[test]
    fn drops_inner_values() {
        let rt = DetRuntime::with_defaults();
        let counter = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        struct D(Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let pool: DetPool<D> = DetPool::new(&rt, 2);
        let a = pool.alloc(D(Arc::clone(&counter))).unwrap();
        let b = pool.alloc(D(Arc::clone(&counter))).unwrap();
        drop(a);
        drop(b);
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 2);
    }
}
