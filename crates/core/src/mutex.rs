//! The deterministic mutex — Kendo's `det_mutex_lock` as used by DetLock.
//!
//! Acquisition is a deterministic event:
//!
//! 1. wait for the turn (own `(clock, tid)` globally minimal);
//! 2. `try_lock`; if physically held, or physically free but *logically*
//!    still held (last release clock ≥ own clock — the release lies in the
//!    acquirer's logical future), bump the own clock by one and retry;
//! 3. on success, bump the clock so later events by this thread order after
//!    the acquisition.
//!
//! Release does **not** wait for the turn: it stamps the lock with the
//! releaser's clock (making step 2's test deterministic) and bumps the
//! clock. See the crate docs for the determinism argument.

use crate::runtime::{current, fault_point, wait_turn, DetRuntime};
use detlock_shim::sync::RawMutex;
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};

const NEVER_RELEASED: u64 = u64::MAX;

/// A mutex whose acquisition order is a deterministic function of the
/// program (given race-free use of the data it protects).
pub struct DetMutex<T: ?Sized> {
    rt: DetRuntime,
    raw: RawMutex,
    release_clock: AtomicU64,
    id: u64,
    data: UnsafeCell<T>,
}

// Safety: the raw mutex serializes access to `data` exactly like a normal
// mutex; the deterministic protocol only constrains *when* acquisition
// succeeds.
unsafe impl<T: ?Sized + Send> Send for DetMutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for DetMutex<T> {}

impl<T> DetMutex<T> {
    /// Create a deterministic mutex owned by `rt`.
    pub fn new(rt: &DetRuntime, value: T) -> DetMutex<T> {
        DetMutex {
            rt: rt.clone(),
            raw: RawMutex::INIT,
            release_clock: AtomicU64::new(NEVER_RELEASED),
            id: rt.alloc_lock_id(),
            data: UnsafeCell::new(value),
        }
    }

    /// The runtime-assigned lock id (used in traces).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Deterministically acquire the mutex.
    pub fn lock(&self) -> DetMutexGuard<'_, T> {
        let (inner, me) = current();
        debug_assert!(
            std::sync::Arc::ptr_eq(&inner, &self.rt.inner),
            "DetMutex used from a thread of a different runtime"
        );
        let reg = &inner.registry;
        fault_point(&inner, me);
        reg.set_waiting(me, Some(self.id));
        loop {
            wait_turn(&inner, me);
            let my_clock = reg.clock(me);
            if self.raw.try_lock() {
                let r = self.release_clock.load(Ordering::Acquire);
                if r == NEVER_RELEASED || r < my_clock {
                    break;
                }
                // Physically free but logically released in our future:
                // indistinguishable (deterministically) from "still held".
                self.raw.unlock();
            }
            reg.tick(me, 1);
        }
        reg.set_waiting(me, None);
        reg.tick(me, 1);
        inner.trace.record(self.id, me, reg.clock(me));
        DetMutexGuard {
            mutex: self,
            tid: me,
        }
    }

    /// Deterministic `try_lock`: a deterministic event whose *outcome* is
    /// also deterministic — at the caller's turn, returns `Some` exactly
    /// when the mutex is logically free (physically free with its last
    /// release in the caller's logical past). Unlike [`DetMutex::lock`] it
    /// never bumps the clock to chase a logically-future release; it
    /// reports failure instead, which is what a timing-independent
    /// `try_lock` has to mean.
    pub fn try_lock(&self) -> Option<DetMutexGuard<'_, T>> {
        let (inner, me) = current();
        debug_assert!(std::sync::Arc::ptr_eq(&inner, &self.rt.inner));
        let reg = &inner.registry;
        fault_point(&inner, me);
        wait_turn(&inner, me);
        let my_clock = reg.clock(me);
        let acquired = if self.raw.try_lock() {
            let r = self.release_clock.load(Ordering::Acquire);
            if r == NEVER_RELEASED || r < my_clock {
                true
            } else {
                self.raw.unlock();
                false
            }
        } else {
            false
        };
        reg.tick(me, 1); // the attempt is an event either way
        if acquired {
            inner.trace.record(self.id, me, reg.clock(me));
            Some(DetMutexGuard {
                mutex: self,
                tid: me,
            })
        } else {
            None
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// Mutable access without locking (requires `&mut self`, so no other
    /// thread can hold the lock).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

/// RAII guard; releasing is not turn-gated.
pub struct DetMutexGuard<'a, T: ?Sized> {
    mutex: &'a DetMutex<T>,
    tid: u32,
}

impl<'a, T: ?Sized> DetMutexGuard<'a, T> {
    /// The mutex this guard locks (used by [`crate::condvar::DetCondvar`]
    /// to re-acquire after a wait).
    pub fn mutex(guard: &DetMutexGuard<'a, T>) -> &'a DetMutex<T> {
        guard.mutex
    }
}

impl<T: ?Sized> Deref for DetMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T: ?Sized> DerefMut for DetMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T: ?Sized> Drop for DetMutexGuard<'_, T> {
    fn drop(&mut self) {
        let reg = &self.mutex.rt.inner.registry;
        let clock = reg.clock(self.tid);
        self.mutex.release_clock.store(clock, Ordering::Release);
        self.mutex.raw.unlock();
        reg.tick(self.tid, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{tick, DetConfig};
    use std::sync::Arc;

    fn rt_traced() -> DetRuntime {
        DetRuntime::new(DetConfig {
            record_trace: true,
            ..DetConfig::default()
        })
    }

    #[test]
    fn single_thread_lock_unlock() {
        let rt = rt_traced();
        let m = DetMutex::new(&rt, 5);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
        assert_eq!(rt.trace_len(), 2);
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let rt = DetRuntime::with_defaults();
        let m = Arc::new(DetMutex::new(&rt, 0i64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(rt.spawn(move || {
                for _ in 0..200 {
                    tick(3);
                    let mut g = m.lock();
                    *g += 1;
                }
            }));
        }
        for h in handles {
            h.join();
        }
        assert_eq!(*m.lock(), 800);
    }

    #[test]
    fn acquisition_order_is_reproducible() {
        // Run the same contended workload twice (fresh runtimes) with
        // injected timing noise; the traces must match event for event.
        fn run(noise: bool) -> Vec<(u64, u32)> {
            let rt = rt_traced();
            let m = Arc::new(DetMutex::new(&rt, 0i64));
            let mut handles = Vec::new();
            for t in 0..3u32 {
                let m = Arc::clone(&m);
                handles.push(rt.spawn(move || {
                    for i in 0..60 {
                        tick(5 + t as u64); // deterministic, thread-varying
                        if noise && i % 17 == t as i32 % 17 {
                            std::thread::sleep(std::time::Duration::from_micros(
                                50 * (t as u64 + 1),
                            ));
                        }
                        let mut g = m.lock();
                        *g += 1;
                    }
                }));
            }
            for h in handles {
                h.join();
            }
            rt.trace_events().iter().map(|e| (e.lock, e.tid)).collect()
        }
        let a = run(false);
        let b = run(true);
        let c = run(true);
        assert_eq!(a.len(), 180);
        assert_eq!(a, b, "timing noise changed the acquisition order");
        assert_eq!(b, c);
    }

    #[test]
    fn two_locks_reproducible() {
        fn run(extra_sleep_tid: u32) -> Vec<(u64, u32)> {
            let rt = rt_traced();
            let m1 = Arc::new(DetMutex::new(&rt, 0i64));
            let m2 = Arc::new(DetMutex::new(&rt, 0i64));
            let mut handles = Vec::new();
            for t in 0..3u32 {
                let m1 = Arc::clone(&m1);
                let m2 = Arc::clone(&m2);
                handles.push(rt.spawn(move || {
                    for i in 0..40 {
                        tick(4);
                        if t == extra_sleep_tid && i % 10 == 0 {
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        }
                        if (i + t as i32) % 2 == 0 {
                            let mut g = m1.lock();
                            *g += 1;
                        } else {
                            let mut g = m2.lock();
                            *g += 1;
                        }
                    }
                }));
            }
            for h in handles {
                h.join();
            }
            rt.trace_events().iter().map(|e| (e.lock, e.tid)).collect()
        }
        let a = run(0);
        let b = run(1);
        let c = run(2);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn into_inner_and_get_mut() {
        let rt = DetRuntime::with_defaults();
        let mut m = DetMutex::new(&rt, vec![1, 2]);
        m.get_mut().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn guard_releases_on_drop_for_other_threads() {
        let rt = DetRuntime::with_defaults();
        let m = Arc::new(DetMutex::new(&rt, 0));
        let g = m.lock();
        drop(g);
        let m2 = Arc::clone(&m);
        let h = rt.spawn(move || {
            tick(1);
            *m2.lock() + 1
        });
        assert_eq!(h.join(), 1);
    }
}

#[cfg(test)]
mod try_lock_tests {
    use super::*;
    use crate::runtime::{tick, DetConfig};
    use std::sync::Arc;

    #[test]
    fn try_lock_succeeds_when_free() {
        let rt = DetRuntime::with_defaults();
        let m = DetMutex::new(&rt, 5);
        let g = m.try_lock().expect("free mutex");
        assert_eq!(*g, 5);
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn try_lock_fails_when_logically_held() {
        // The hold must span the child's attempt in *logical* time — real
        // time is irrelevant (that is the whole point): main acquires at
        // clock ~1 and releases at clock ~102, while the child attempts at
        // clock ~3. Whether main has physically released by then or not,
        // the child deterministically observes "held".
        let rt = DetRuntime::with_defaults();
        let m = Arc::new(DetMutex::new(&rt, 0));
        let g = m.lock();
        let m2 = Arc::clone(&m);
        let h = rt.spawn(move || {
            tick(1);
            m2.try_lock().is_none()
        });
        tick(100); // main's clock races past the child's attempt point
        drop(g); // release clock ≈ 102 — logically after the attempt
        assert!(h.join(), "try_lock inside the logical hold must fail");
    }

    #[test]
    fn try_lock_outcomes_reproducible() {
        fn run(noise: bool) -> Vec<(u32, bool)> {
            let rt = DetRuntime::new(DetConfig {
                record_trace: true,
                ..DetConfig::default()
            });
            let m = Arc::new(DetMutex::new(&rt, 0i64));
            let log: Arc<detlock_shim::sync::Mutex<Vec<(u32, u64, bool)>>> =
                Arc::new(detlock_shim::sync::Mutex::new(Vec::new()));
            let mut handles = Vec::new();
            for t in 0..3u32 {
                let m = Arc::clone(&m);
                let log = Arc::clone(&log);
                let rt2 = rt.clone();
                handles.push(rt.spawn(move || {
                    for i in 0..30u64 {
                        tick(3 + (t as u64 + i) % 4);
                        if noise && i % 8 == t as u64 {
                            std::thread::sleep(std::time::Duration::from_micros(70));
                        }
                        match m.try_lock() {
                            Some(mut g) => {
                                *g += 1;
                                // Hold across some work so others' attempts
                                // can fail.
                                tick(2);
                                log.lock().push((t, rt2.clock(), true));
                            }
                            None => log.lock().push((t, rt2.clock(), false)),
                        }
                    }
                }));
            }
            for h in handles {
                h.join();
            }
            let mut v: Vec<(u32, u64, bool)> = log.lock().clone();
            // Per-thread outcome sequences ordered by that thread's clock.
            v.sort();
            v.into_iter().map(|(t, _, ok)| (t, ok)).collect()
        }
        let a = run(false);
        let b = run(true);
        assert_eq!(a, b, "try_lock outcomes must be timing-independent");
    }
}
