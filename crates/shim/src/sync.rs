//! Non-poisoning synchronization primitives over `std::sync`.
//!
//! The deterministic runtime's failure model requires that a panicking
//! deterministic thread can still run its exit protocol; `std::sync`
//! poisoning would turn every later internal lock acquisition into a second
//! panic. These wrappers recover the guard from a `PoisonError` instead —
//! the runtime's own invariants are maintained by its deterministic
//! protocol, not by poisoning.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A non-poisoning mutex (API subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]; the inner `Option` lets [`Condvar::wait`] move the
/// std guard out and back without consuming the wrapper.
pub struct MutexGuard<'a, T: ?Sized> {
    // Invariant: `Some` except transiently inside `Condvar::wait*`.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard taken during condvar wait")
    }
}

/// A condition variable usable with [`Mutex`] (API subset of
/// `parking_lot::Condvar`: waits take `&mut MutexGuard`).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during condvar wait");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses; returns `true` when the
    /// wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let g = guard.inner.take().expect("guard taken during condvar wait");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        res.timed_out()
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A word-sized try-lock mutex (stand-in for `parking_lot::RawMutex` as the
/// deterministic mutex's physical lock).
///
/// The deterministic protocol only ever calls `try_lock` while holding the
/// arbitration turn and retries through its own clock machinery, so the raw
/// lock needs no waiter queue or blocking path.
#[derive(Debug, Default)]
pub struct RawMutex {
    locked: AtomicBool,
}

impl RawMutex {
    /// An unlocked raw mutex (`parking_lot`-style INIT constant).
    #[allow(clippy::declare_interior_mutable_const)] // mirrors lock_api's INIT pattern
    pub const INIT: RawMutex = RawMutex {
        locked: AtomicBool::new(false),
    };

    /// Attempt to acquire; never blocks.
    pub fn try_lock(&self) -> bool {
        self.locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Release. Caller must hold the lock.
    pub fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }

    /// Whether the lock is currently held (diagnostic only).
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
            42
        });
        std::thread::sleep(Duration::from_millis(10));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)));
    }

    #[test]
    fn raw_mutex_try_lock_unlock() {
        let r = RawMutex::INIT;
        assert!(r.try_lock());
        assert!(!r.try_lock());
        r.unlock();
        assert!(r.try_lock());
        r.unlock();
    }
}
