//! A small seeded PRNG (stand-in for `rand::rngs::SmallRng`).
//!
//! xoshiro256** seeded through splitmix64, the same construction `rand`'s
//! `SmallRng` used on 64-bit targets. Statistical quality is irrelevant
//! here — the simulator needs *reproducible* jitter streams and the tests
//! need cheap case generation — but keeping the familiar construction keeps
//! the jitter behaviour close to what the seed-tuned experiment constants
//! were calibrated against.

/// Seeded pseudo-random generator.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Create from a 64-bit seed (API-compatible with
    /// `SeedableRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The raw generator state, for fingerprinting snapshots of the
    /// stream position (checkpoint digests). Two `SmallRng`s with equal
    /// state produce identical future streams.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `range` (half-open). Panics on an empty range.
    #[inline]
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.end > range.start, "gen_range on empty range");
        let span = range.end - range.start;
        // Multiply-shift rejection-free mapping: negligible bias for the
        // small spans used here (jitter windows, test-case shapes).
        range.start + (((self.next_u64() as u128) * (span as u128)) >> 64) as u64
    }

    /// Uniform `usize` in `range` (half-open).
    #[inline]
    pub fn gen_range_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.gen_range(range.start as u64..range.end as u64) as usize
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
        // All values of a small span are reachable.
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.gen_range(0..5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
