//! A minimal JSON tree with pretty printing and parsing (stand-in for the
//! `serde`/`serde_json` pair the bench binaries used for `--json` output,
//! and the wire format of the `detlock-serve` line protocol).
//!
//! Result structs implement [`ToJson`] by hand — a few lines each — instead
//! of deriving `Serialize`. Output formatting matches `serde_json`'s
//! `to_string_pretty` (two-space indent) so downstream scripts keep
//! parsing. [`Json::to_string_compact`] emits a single line (no interior
//! newlines) for newline-delimited protocols, and [`Json::parse`] reads
//! both forms back.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (emitted without a decimal point).
    Int(i64),
    /// Float (non-finite values are emitted as `null`, as serde_json does).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Pretty-print with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Single-line form (no interior newlines) — the line-protocol wire
    /// format. Matches `serde_json::to_string`.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Parse a JSON document. Accepts exactly one value (surrounded by
    /// optional whitespace); errors carry a byte offset.
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Integer view: `Int` directly, or an integral `Num`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::Num(v) if v.fract() == 0.0 && v.abs() < 9e15 => Some(*v as i64),
            _ => None,
        }
    }

    /// Non-negative integer view.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|v| u64::try_from(v).ok())
    }

    /// Numeric view: `Num` directly, or an `Int` widened.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
            scalar => scalar.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    // Match serde_json: integral floats keep a ".0".
                    if *v == v.trunc() && v.abs() < 1e15 {
                        out.push_str(&format!("{v:.1}"));
                    } else {
                        out.push_str(&v.to_string());
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: message plus the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by `\uDC00..=\uDFFF`.
                            let c = if (0xD800..=0xDBFF).contains(&hi) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + lo.checked_sub(0xDC00)
                                            .ok_or_else(|| self.err("invalid low surrogate"))?;
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Read exactly four hex digits (the `\u` marker is already consumed).
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            s.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err("invalid number"))
        } else {
            s.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("invalid integer"))
        }
    }
}

/// Conversion into a [`Json`] tree (the `Serialize` replacement).
pub trait ToJson {
    /// Convert `self` into a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::Int(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_serde_layout() {
        let v = Json::obj([
            ("name", Json::Str("ocean".into())),
            ("pct", Json::Num(12.5)),
            ("runs", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        assert_eq!(
            v.to_string_pretty(),
            "{\n  \"name\": \"ocean\",\n  \"pct\": 12.5,\n  \"runs\": [\n    1,\n    2\n  ]\n}"
        );
    }

    #[test]
    fn parse_round_trips_compact_and_pretty() {
        let v = Json::obj([
            ("op", Json::Str("run".into())),
            ("seed", Json::Int(-7)),
            ("scale", Json::Num(0.25)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj([("k", Json::Str("v\"\n".into()))])),
        ]);
        let compact = v.to_string_compact();
        assert!(!compact.contains('\n'), "compact form must be one line");
        assert_eq!(Json::parse(&compact).unwrap(), v);
        assert_eq!(Json::parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn parse_scalars_and_accessors() {
        let v = Json::parse(r#"{"a": 3, "b": 2.5, "c": "x", "d": [1,2], "e": true}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_i64), Some(3));
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(Json::as_f64), Some(2.5));
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(
            v.get("d").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("e").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Json::parse("-12").unwrap(), Json::Int(-12));
    }

    #[test]
    fn parse_unicode_escapes() {
        // Literal UTF-8 passthrough plus simple escapes.
        assert_eq!(
            Json::parse(r#""é\t😀""#).unwrap(),
            Json::Str("é\t😀".into())
        );
        // \u escape and a surrogate pair.
        assert_eq!(
            Json::parse("\"\\u00e9 \\ud83d\\ude00\"").unwrap(),
            Json::Str("é 😀".into())
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "\"\\u12",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed `{bad}`");
        }
    }

    #[test]
    fn escapes_and_empties() {
        assert_eq!(
            Json::Str("a\"b\n".into()).to_string_pretty(),
            "\"a\\\"b\\n\""
        );
        assert_eq!(Json::Arr(vec![]).to_string_pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).to_string_pretty(), "{}");
        assert_eq!(Json::Num(f64::NAN).to_string_pretty(), "null");
        assert_eq!(Json::Num(3.0).to_string_pretty(), "3.0");
    }
}
