//! A minimal JSON tree with pretty printing (stand-in for the
//! `serde`/`serde_json` pair the bench binaries used for `--json` output).
//!
//! Result structs implement [`ToJson`] by hand — a few lines each — instead
//! of deriving `Serialize`. Output formatting matches `serde_json`'s
//! `to_string_pretty` (two-space indent) so downstream scripts keep parsing.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (emitted without a decimal point).
    Int(i64),
    /// Float (non-finite values are emitted as `null`, as serde_json does).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Pretty-print with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    // Match serde_json: integral floats keep a ".0".
                    if *v == v.trunc() && v.abs() < 1e15 {
                        out.push_str(&format!("{v:.1}"));
                    } else {
                        out.push_str(&v.to_string());
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] tree (the `Serialize` replacement).
pub trait ToJson {
    /// Convert `self` into a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::Int(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_serde_layout() {
        let v = Json::obj([
            ("name", Json::Str("ocean".into())),
            ("pct", Json::Num(12.5)),
            ("runs", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        assert_eq!(
            v.to_string_pretty(),
            "{\n  \"name\": \"ocean\",\n  \"pct\": 12.5,\n  \"runs\": [\n    1,\n    2\n  ]\n}"
        );
    }

    #[test]
    fn escapes_and_empties() {
        assert_eq!(
            Json::Str("a\"b\n".into()).to_string_pretty(),
            "\"a\\\"b\\n\""
        );
        assert_eq!(Json::Arr(vec![]).to_string_pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).to_string_pretty(), "{}");
        assert_eq!(Json::Num(f64::NAN).to_string_pretty(), "null");
        assert_eq!(Json::Num(3.0).to_string_pretty(), "3.0");
    }
}
