//! Zero-dependency poll-based readiness for nonblocking sockets.
//!
//! The serving edge (detlock-serve's event loop, detload's high-connection
//! driver) needs to watch thousands of sockets from one thread without
//! pulling in `mio`/`tokio`. This module provides the minimal readiness
//! primitive that makes that possible on a bare toolchain:
//!
//! * [`Poller`] — a reusable wrapper over the platform's `poll(2)`,
//!   declared directly against libc (which `std` already links) so no
//!   crate dependency is added. Callers rebuild the interest set each
//!   iteration (`clear` + `push`) and read per-entry readiness after
//!   [`Poller::wait`].
//! * [`wake_pair`] — a cross-thread wakeup token built from a connected
//!   UDP socket pair (the portable self-pipe trick): worker threads call
//!   [`Waker::wake`] to interrupt a blocked `wait`, and the loop drains
//!   the token with [`WakeRx::drain`].
//!
//! On non-unix targets `wait` degrades to a bounded sleep that reports
//! every entry ready for its registered interests; callers must already
//! treat `WouldBlock` as "not actually ready", so the fallback is merely
//! slower, not wrong.

use std::io;
use std::net::UdpSocket;
use std::sync::Arc;
use std::time::Duration;

/// Raw socket descriptor, as used by [`Poller::push`].
#[cfg(unix)]
pub type RawFd = std::os::unix::io::RawFd;
/// Raw socket descriptor (fallback alias on non-unix targets).
#[cfg(not(unix))]
pub type RawFd = i64;

/// What to watch a descriptor for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Wake when the descriptor is readable (or closed by the peer).
    pub const READABLE: Interest = Interest(1);
    /// Wake when the descriptor is writable.
    pub const WRITABLE: Interest = Interest(2);
    /// Both directions.
    pub const BOTH: Interest = Interest(3);

    /// Whether this interest includes reads.
    pub fn reads(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether this interest includes writes.
    pub fn writes(self) -> bool {
        self.0 & 2 != 0
    }
}

/// Readiness reported for one registered descriptor after a `wait`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Readiness {
    /// Data (or EOF) can be read without blocking.
    pub readable: bool,
    /// A write would make progress.
    pub writable: bool,
    /// Error or hangup: the descriptor should be read (to observe the
    /// error/EOF) and then discarded.
    pub error: bool,
}

impl Readiness {
    /// Any of the three conditions.
    pub fn any(self) -> bool {
        self.readable || self.writable || self.error
    }
}

#[cfg(unix)]
mod sys {
    //! The `poll(2)` ABI, declared directly: `std` already links libc on
    //! every unix target, so an `extern "C"` declaration adds no
    //! dependency. Constants below hold on Linux, macOS and the BSDs.
    #[repr(C)]
    pub struct pollfd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }
    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;
    extern "C" {
        pub fn poll(fds: *mut pollfd, nfds: core::ffi::c_ulong, timeout: i32) -> i32;
    }
}

/// A reusable `poll(2)` interest set (see module docs).
///
/// The entry order of `push` calls is stable: the index returned by
/// `push` addresses the same descriptor in [`Poller::ready`] after the
/// `wait`.
#[derive(Default)]
pub struct Poller {
    #[cfg(unix)]
    fds: Vec<sys::pollfd>,
    #[cfg(not(unix))]
    fds: Vec<(RawFd, Interest)>,
}

impl Poller {
    /// An empty interest set.
    pub fn new() -> Poller {
        Poller::default()
    }

    /// Drop all registered descriptors (keeps the allocation).
    pub fn clear(&mut self) {
        self.fds.clear();
    }

    /// Number of registered descriptors.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// Whether the interest set is empty.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Register `fd` with `interest`; returns the entry's index.
    pub fn push(&mut self, fd: RawFd, interest: Interest) -> usize {
        #[cfg(unix)]
        {
            let mut events = 0i16;
            if interest.reads() {
                events |= sys::POLLIN;
            }
            if interest.writes() {
                events |= sys::POLLOUT;
            }
            self.fds.push(sys::pollfd {
                fd,
                events,
                revents: 0,
            });
        }
        #[cfg(not(unix))]
        self.fds.push((fd, interest));
        self.fds.len() - 1
    }

    /// Block until at least one descriptor is ready or `timeout` expires
    /// (`None` = wait forever). Returns the number of ready descriptors
    /// (0 on timeout). `EINTR` is reported as a 0-ready wakeup, not an
    /// error, so signal delivery never kills an event loop.
    pub fn wait(&mut self, timeout: Option<Duration>) -> io::Result<usize> {
        #[cfg(unix)]
        {
            let ms: i32 = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
            };
            let rc = unsafe {
                sys::poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as core::ffi::c_ulong,
                    ms,
                )
            };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            Ok(rc as usize)
        }
        #[cfg(not(unix))]
        {
            // Degraded portable fallback: bounded sleep, then report every
            // entry ready for its interests. Callers use nonblocking I/O
            // and treat WouldBlock as "not ready", so this busy-polls
            // correctly, just less efficiently.
            std::thread::sleep(
                timeout
                    .unwrap_or(Duration::from_millis(1))
                    .min(Duration::from_millis(1)),
            );
            Ok(self.fds.len())
        }
    }

    /// Readiness of entry `idx` (as returned by `push`) after a `wait`.
    pub fn ready(&self, idx: usize) -> Readiness {
        #[cfg(unix)]
        {
            let r = self.fds[idx].revents;
            Readiness {
                readable: r & (sys::POLLIN | sys::POLLHUP) != 0,
                writable: r & sys::POLLOUT != 0,
                error: r & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0,
            }
        }
        #[cfg(not(unix))]
        {
            let (_, interest) = self.fds[idx];
            Readiness {
                readable: interest.reads(),
                writable: interest.writes(),
                error: false,
            }
        }
    }
}

/// The sending half of a wakeup token (cheaply cloneable; safe to call
/// from any thread).
#[derive(Clone)]
pub struct Waker {
    tx: Arc<UdpSocket>,
}

impl Waker {
    /// Interrupt a `wait` blocked on the paired [`WakeRx`]. Best-effort:
    /// a full socket buffer means a wake is already pending, which is
    /// exactly as good.
    pub fn wake(&self) {
        let _ = self.tx.send(&[1u8]);
    }
}

/// The receiving half of a wakeup token: register [`WakeRx::fd`] with
/// [`Interest::READABLE`] and [`WakeRx::drain`] it on every wakeup.
pub struct WakeRx {
    rx: UdpSocket,
}

impl WakeRx {
    /// Descriptor to register with the poller.
    #[cfg(unix)]
    pub fn fd(&self) -> RawFd {
        use std::os::unix::io::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// Descriptor to register with the poller (fallback).
    #[cfg(not(unix))]
    pub fn fd(&self) -> RawFd {
        0
    }

    /// Consume all pending wake datagrams (level-triggered reset).
    pub fn drain(&self) {
        let mut buf = [0u8; 16];
        while self.rx.recv(&mut buf).is_ok() {}
    }
}

/// Build a connected wakeup pair over loopback UDP — the portable
/// self-pipe: no pipes, no signals, nothing beyond `std::net`.
pub fn wake_pair() -> io::Result<(Waker, WakeRx)> {
    let rx = UdpSocket::bind("127.0.0.1:0")?;
    let tx = UdpSocket::bind("127.0.0.1:0")?;
    tx.connect(rx.local_addr()?)?;
    rx.set_nonblocking(true)?;
    tx.set_nonblocking(true)?;
    Ok((Waker { tx: Arc::new(tx) }, WakeRx { rx }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[cfg(unix)]
    use std::os::unix::io::AsRawFd;

    #[test]
    #[cfg(unix)]
    fn poll_sees_readable_tcp_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new();
        poller.push(server.as_raw_fd(), Interest::READABLE);
        // Nothing written yet: a short wait times out.
        assert_eq!(poller.wait(Some(Duration::from_millis(10))).unwrap(), 0);
        assert!(!poller.ready(0).readable);

        client.write_all(b"hi").unwrap();
        client.flush().unwrap();
        let n = poller.wait(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(poller.ready(0).readable);
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 2);
    }

    #[test]
    #[cfg(unix)]
    fn poll_reports_peer_close_as_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        drop(client);

        let mut poller = Poller::new();
        poller.push(server.as_raw_fd(), Interest::READABLE);
        assert!(poller.wait(Some(Duration::from_secs(5))).unwrap() >= 1);
        assert!(poller.ready(0).readable, "EOF must surface as readable");
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let (waker, wake_rx) = wake_pair().unwrap();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let mut poller = Poller::new();
        poller.push(wake_rx.fd(), Interest::READABLE);
        let t0 = Instant::now();
        let n = poller.wait(Some(Duration::from_secs(10))).unwrap();
        assert!(n >= 1, "waker must end the wait");
        assert!(t0.elapsed() < Duration::from_secs(5));
        wake_rx.drain();
        // Drained: the next wait times out instead of spinning.
        let mut poller = Poller::new();
        poller.push(wake_rx.fd(), Interest::READABLE);
        assert_eq!(poller.wait(Some(Duration::from_millis(10))).unwrap(), 0);
        handle.join().unwrap();
    }

    #[test]
    fn interest_flags_decompose() {
        assert!(Interest::READABLE.reads() && !Interest::READABLE.writes());
        assert!(Interest::WRITABLE.writes() && !Interest::WRITABLE.reads());
        assert!(Interest::BOTH.reads() && Interest::BOTH.writes());
    }
}
