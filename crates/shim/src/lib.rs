//! # detlock-shim
//!
//! Zero-dependency stand-ins for the external crates the workspace used to
//! depend on (`parking_lot`, `crossbeam::utils::CachePadded`, `rand`,
//! `serde_json`). The build must succeed from a bare toolchain with no
//! registry access, so every primitive the runtime and harnesses need is
//! implemented here on top of `std` alone.
//!
//! The APIs deliberately mirror the subset of the originals the workspace
//! uses, so the call sites read the same:
//!
//! * [`sync::Mutex`] / [`sync::Condvar`] — non-poisoning wrappers over
//!   `std::sync` (a panicking deterministic thread must not poison runtime
//!   internals; see the failure model in DESIGN.md);
//! * [`sync::RawMutex`] — a word-sized try-lock/unlock mutex for the
//!   deterministic mutex's physical lock (only ever `try_lock`ed at the
//!   holder's turn, so it needs no queueing);
//! * [`CachePadded`] — cache-line-aligned wrapper for per-thread clock slots;
//! * [`rng::SmallRng`] — a seeded splitmix64/xoshiro-style generator for
//!   simulator jitter and test-case generation;
//! * [`json::Json`] — a minimal JSON tree with pretty printing for the
//!   bench binaries' `--json` output;
//! * [`evloop::Poller`] / [`evloop::wake_pair`] — `poll(2)`-based socket
//!   readiness and a cross-thread waker, so the serving edge can drive
//!   thousands of nonblocking connections from one thread without `mio`.

#![warn(missing_docs)]

pub mod evloop;
pub mod json;
pub mod rng;
pub mod sync;

/// Cache-line-aligned wrapper (stand-in for `crossbeam_utils::CachePadded`).
///
/// 128-byte alignment covers the common 64-byte line plus adjacent-line
/// prefetchers on x86 and the 128-byte lines on some arm64 parts.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value` in its own cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Unwrap, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_aligned_and_transparent() {
        let c = CachePadded::new(7u64);
        assert_eq!(*c, 7);
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert_eq!(c.into_inner(), 7);
    }
}
