//! Integration tests for the cycle-level simulator: interpreter semantics,
//! mode behaviour, deterministic arbitration, and the Kendo simulation.

use detlock_ir::builder::FunctionBuilder;
use detlock_ir::inst::{BinOp, CmpOp, Inst, Operand};
use detlock_ir::types::{BarrierId, FuncId};
use detlock_ir::Module;
use detlock_passes::cost::CostModel;
use detlock_vm::determinism::check_determinism;
use detlock_vm::machine::{
    run, Checkpoint, CkptControl, ExecMode, Jitter, KendoParams, Machine, MachineConfig,
    RunOutcome, ThreadSpec,
};
use detlock_vm::Sched;

fn cfg(mode: ExecMode) -> MachineConfig {
    MachineConfig {
        mode,
        max_cycles: 50_000_000,
        ..MachineConfig::default()
    }
}

/// Kendo-mode config with the chunk scheduler pinned explicitly (these
/// tests assert chunked-clock behaviour, so they must not inherit
/// whatever `DETLOCK_SCHEDULER` the environment selects).
fn kendo_cfg(params: KendoParams) -> MachineConfig {
    let mut c = cfg(ExecMode::Kendo);
    c.scheduler = Sched::Chunk(params);
    c
}

fn no_jitter(mut c: MachineConfig) -> MachineConfig {
    c.jitter = Jitter {
        seed: 0,
        prob_num: 0,
        prob_den: 0,
        max_extra: 0,
    };
    c
}

/// A program that computes a value into shared memory: mem[0] = sum of
/// 1..=n via a loop, then returns.
fn sum_program() -> (Module, FuncId) {
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("sum", 1);
    fb.block("entry");
    let head = fb.create_block("head");
    let body = fb.create_block("body");
    let done = fb.create_block("done");
    let n = fb.param(0);
    let i = fb.iconst(0);
    let acc = fb.iconst(0);
    fb.br(head);
    fb.switch_to(head);
    let c = fb.cmp(CmpOp::Lt, i, n);
    fb.cond_br(c, body, done);
    fb.switch_to(body);
    fb.bin_to(BinOp::Add, i, i, 1);
    fb.bin_to(BinOp::Add, acc, acc, i);
    fb.br(head);
    fb.switch_to(done);
    let addr = fb.iconst(0);
    fb.store(addr, 0, acc);
    fb.ret(acc);
    let f = fb.finish_into(&mut m);
    (m, f)
}

#[test]
fn interpreter_computes_correct_sum() {
    let (m, f) = sum_program();
    let cost = CostModel::default();
    let (metrics, hit) = run(
        &m,
        &cost,
        &[ThreadSpec {
            func: f,
            args: vec![10],
        }],
        no_jitter(cfg(ExecMode::Baseline)),
    );
    assert!(!hit);
    // 1+..+10 = 55 stored; verify via instruction count sanity + stores.
    assert_eq!(metrics.per_thread[0].retired_stores, 1);
    assert!(metrics.per_thread[0].instructions > 30);
    assert!(metrics.cycles > 0);
}

/// Threads increment a shared counter under a lock, `iters` times each.
fn counter_program(iters: i64, compute_between: usize) -> (Module, FuncId) {
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("worker", 2); // (tid, iters)
    fb.block("entry");
    let head = fb.create_block("head");
    let body = fb.create_block("body");
    let done = fb.create_block("done");
    let iters_r = fb.param(1);
    let i = fb.iconst(0);
    fb.br(head);
    fb.switch_to(head);
    let c = fb.cmp(CmpOp::Lt, i, iters_r);
    fb.cond_br(c, body, done);
    fb.switch_to(body);
    fb.compute(compute_between);
    fb.lock(0i64);
    let addr = fb.iconst(100);
    let v = fb.load(addr, 0);
    let v2 = fb.add(v, 1);
    fb.store(addr, 0, v2);
    fb.unlock(0i64);
    fb.bin_to(BinOp::Add, i, i, 1);
    fb.br(head);
    fb.switch_to(done);
    fb.ret_void();
    let f = fb.finish_into(&mut m);
    let _ = iters;
    (m, f)
}

fn counter_threads(f: FuncId, n: usize, iters: i64) -> Vec<ThreadSpec> {
    (0..n)
        .map(|t| ThreadSpec {
            func: f,
            args: vec![t as i64, iters],
        })
        .collect()
}

#[test]
fn locks_are_mutually_exclusive_and_all_acquires_counted() {
    let (m, f) = counter_program(50, 5);
    let cost = CostModel::default();
    let (metrics, hit) = run(
        &m,
        &cost,
        &counter_threads(f, 4, 50),
        cfg(ExecMode::Baseline),
    );
    assert!(!hit);
    assert_eq!(metrics.lock_acquires(), 200);
    assert_eq!(metrics.lock_order.len(), 200);
}

#[test]
fn baseline_lock_order_varies_with_seed() {
    let (m, f) = counter_program(60, 3);
    let cost = CostModel::default();
    let report = check_determinism(
        &m,
        &cost,
        &counter_threads(f, 4, 60),
        &cfg(ExecMode::Baseline),
        &[1, 2, 3, 4, 5],
    );
    assert!(!report.any_hit_limit);
    assert!(
        !report.deterministic,
        "baseline should be timing-dependent: {:?}",
        report.hashes
    );
    // A violated probe pinpoints the first diverging acquisition so the
    // operator can see *where* the orders split, not just that they did.
    let d = report.divergence.expect("divergence located");
    assert_eq!(d.seed_a, 1);
    assert!(d.a.is_some() || d.b.is_some());
    assert_ne!(d.a, d.b);
}

#[test]
fn clocks_only_mode_is_still_nondeterministic() {
    // Without instrumentation in the module, ClocksOnly == Baseline; the
    // point is that the lock discipline (FCFS) remains timing-dependent.
    let (m, f) = counter_program(60, 3);
    let cost = CostModel::default();
    let report = check_determinism(
        &m,
        &cost,
        &counter_threads(f, 4, 60),
        &cfg(ExecMode::ClocksOnly),
        &[7, 8, 9, 10],
    );
    assert!(!report.deterministic);
}

/// Instrument the counter program so Det mode has clocks to arbitrate on.
fn instrumented_counter(compute: usize) -> (Module, FuncId) {
    let (m, f) = counter_program(0, compute);
    let cost = CostModel::default();
    let out = detlock_passes::pipeline::instrument(
        &m,
        &cost,
        &detlock_passes::pipeline::OptConfig::none(),
        detlock_passes::plan::Placement::Start,
        &[f],
    );
    (out.module, f)
}

#[test]
fn det_mode_is_deterministic_across_seeds() {
    let (m, f) = instrumented_counter(8);
    let cost = CostModel::default();
    let report = check_determinism(
        &m,
        &cost,
        &counter_threads(f, 4, 40),
        &cfg(ExecMode::Det),
        &[1, 2, 3, 4, 5, 99, 12345],
    );
    assert!(!report.any_hit_limit, "deadlock or runaway");
    assert!(
        report.deterministic,
        "det mode must be seed-invariant: {:?}",
        report.hashes
    );
    assert_eq!(report.first.lock_acquires(), 160);
}

#[test]
fn det_mode_differs_from_unbalanced_compute_still_deterministic() {
    // Unequal per-thread work: thread 0 computes more between locks. The
    // order is no longer round-robin but must still be seed-invariant.
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("worker", 2); // (extra, iters)
    fb.block("entry");
    let head = fb.create_block("head");
    let body = fb.create_block("body");
    let heavy = fb.create_block("heavy");
    let light = fb.create_block("light");
    let lock_bb = fb.create_block("lock");
    let done = fb.create_block("done");
    let extra = fb.param(0);
    let iters = fb.param(1);
    let i = fb.iconst(0);
    fb.br(head);
    fb.switch_to(head);
    let c = fb.cmp(CmpOp::Lt, i, iters);
    fb.cond_br(c, body, done);
    fb.switch_to(body);
    let is_heavy = fb.cmp(CmpOp::Gt, extra, 0);
    fb.cond_br(is_heavy, heavy, light);
    fb.switch_to(heavy);
    fb.compute(30);
    fb.br(lock_bb);
    fb.switch_to(light);
    fb.compute(4);
    fb.br(lock_bb);
    fb.switch_to(lock_bb);
    fb.lock(7i64);
    let a = fb.iconst(50);
    let v = fb.load(a, 0);
    let v2 = fb.add(v, 1);
    fb.store(a, 0, v2);
    fb.unlock(7i64);
    fb.bin_to(BinOp::Add, i, i, 1);
    fb.br(head);
    fb.switch_to(done);
    fb.ret_void();
    let f = fb.finish_into(&mut m);

    let cost = CostModel::default();
    let out = detlock_passes::pipeline::instrument(
        &m,
        &cost,
        &detlock_passes::pipeline::OptConfig::none(),
        detlock_passes::plan::Placement::Start,
        &[f],
    );
    let threads: Vec<ThreadSpec> = (0..4)
        .map(|t| ThreadSpec {
            func: f,
            args: vec![(t == 0) as i64, 30],
        })
        .collect();
    let report = check_determinism(
        &out.module,
        &cost,
        &threads,
        &cfg(ExecMode::Det),
        &[3, 1416, 55],
    );
    assert!(!report.any_hit_limit);
    assert!(report.deterministic, "{:?}", report.hashes);
}

#[test]
fn kendo_mode_is_deterministic_across_seeds() {
    // Kendo runs the *uninstrumented* module (clocks from stores). The
    // counter program stores once per iteration inside the lock plus the
    // compute filler; give it store traffic via memset.
    let (m, f) = counter_program(0, 6);
    let cost = CostModel::default();
    let report = check_determinism(
        &m,
        &cost,
        &counter_threads(f, 4, 40),
        &kendo_cfg(KendoParams {
            chunk_size: 8,
            interrupt_cost: 30,
        }),
        &[1, 2, 3, 42],
    );
    assert!(!report.any_hit_limit);
    assert!(report.deterministic, "{:?}", report.hashes);
}

#[test]
fn clocks_only_overhead_is_positive_and_modest() {
    let (m, f) = instrumented_counter(20);
    let cost = CostModel::default();
    let threads = counter_threads(f, 4, 50);
    let (base, _) = run(&m, &cost, &threads, no_jitter(cfg(ExecMode::Baseline)));
    let (clk, _) = run(&m, &cost, &threads, no_jitter(cfg(ExecMode::ClocksOnly)));
    let overhead = clk.overhead_pct(&base);
    assert!(overhead > 0.0, "ticks must cost cycles: {overhead}");
    assert!(overhead < 150.0, "tick overhead out of range: {overhead}");
    assert!(clk.ticks_executed() > 0);
    assert_eq!(base.ticks_executed(), 0);
}

#[test]
fn det_overhead_at_least_clocks_overhead() {
    let (m, f) = instrumented_counter(20);
    let cost = CostModel::default();
    let threads = counter_threads(f, 4, 50);
    let (base, _) = run(&m, &cost, &threads, no_jitter(cfg(ExecMode::Baseline)));
    let (clk, _) = run(&m, &cost, &threads, no_jitter(cfg(ExecMode::ClocksOnly)));
    let (det, _) = run(&m, &cost, &threads, no_jitter(cfg(ExecMode::Det)));
    assert!(det.cycles >= clk.cycles, "det adds waiting on top of ticks");
    assert!(det.wait_cycles() > base.wait_cycles());
}

#[test]
fn barrier_releases_all_threads_and_reconciles_clocks() {
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("bar", 1); // tid
    fb.block("entry");
    let after = fb.create_block("after");
    // Unequal pre-barrier work.
    let tid = fb.param(0);
    let amount = fb.mul(tid, 40);
    let i = fb.iconst(0);
    let head = fb.create_block("head");
    let body = fb.create_block("body");
    fb.br(head);
    fb.switch_to(head);
    let c = fb.cmp(CmpOp::Lt, i, amount);
    fb.cond_br(c, body, after);
    fb.switch_to(body);
    fb.bin_to(BinOp::Add, i, i, 1);
    fb.br(head);
    fb.switch_to(after);
    fb.barrier(BarrierId(0));
    fb.compute(3);
    fb.ret_void();
    let f = fb.finish_into(&mut m);

    let cost = CostModel::default();
    let out = detlock_passes::pipeline::instrument(
        &m,
        &cost,
        &detlock_passes::pipeline::OptConfig::none(),
        detlock_passes::plan::Placement::Start,
        &[f],
    );
    let threads: Vec<ThreadSpec> = (0..4)
        .map(|t| ThreadSpec {
            func: f,
            args: vec![t],
        })
        .collect();
    let (metrics, hit) = run(&out.module, &cost, &threads, no_jitter(cfg(ExecMode::Det)));
    assert!(!hit, "barrier must release everyone");
    for t in &metrics.per_thread {
        assert_eq!(t.barrier_waits, 1);
    }
    // After reconciliation all threads executed the same post-barrier code:
    // final clocks equal (same post-barrier ticks from the same base).
    let clocks: Vec<u64> = metrics.per_thread.iter().map(|t| t.final_clock).collect();
    assert!(
        clocks.windows(2).all(|w| w[0] == w[1]),
        "clocks diverged after barrier: {clocks:?}"
    );
}

#[test]
fn function_calls_and_returns_work() {
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("double", 1);
    fb.block("entry");
    let x = fb.param(0);
    let d = fb.mul(x, 2);
    fb.ret(d);
    let double = fb.finish_into(&mut m);

    let mut fb = FunctionBuilder::new("main", 0);
    fb.block("entry");
    let a = fb.call(double, vec![Operand::Imm(21)]);
    let addr = fb.iconst(5);
    fb.store(addr, 0, a);
    fb.ret(a);
    let f = fb.finish_into(&mut m);

    let cost = CostModel::default();
    let (metrics, hit) = run(
        &m,
        &cost,
        &[ThreadSpec {
            func: f,
            args: vec![],
        }],
        no_jitter(cfg(ExecMode::Baseline)),
    );
    assert!(!hit);
    // double executed: its mul counted.
    assert!(metrics.per_thread[0].instructions >= 6);
}

#[test]
fn recursion_executes() {
    // fib via naive recursion, depth-limited.
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("fib", 1);
    fb.block("entry");
    let rec = fb.create_block("rec");
    let basecase = fb.create_block("base");
    let n = fb.param(0);
    let c = fb.cmp(CmpOp::Lt, n, 2);
    fb.cond_br(c, basecase, rec);
    fb.switch_to(basecase);
    fb.ret(n);
    fb.switch_to(rec);
    let n1 = fb.sub(n, 1);
    let n2 = fb.sub(n, 2);
    let a = fb.call(FuncId(0), vec![Operand::Reg(n1)]);
    let b = fb.call(FuncId(0), vec![Operand::Reg(n2)]);
    let s = fb.add(a, Operand::Reg(b));
    fb.ret(s);
    let f = fb.finish_into(&mut m);

    let mut fb = FunctionBuilder::new("main", 0);
    fb.block("entry");
    let r = fb.call(f, vec![Operand::Imm(12)]);
    let addr = fb.iconst(0);
    fb.store(addr, 0, r);
    fb.ret_void();
    let main = fb.finish_into(&mut m);

    let cost = CostModel::default();
    let (metrics, hit) = run(
        &m,
        &cost,
        &[ThreadSpec {
            func: main,
            args: vec![],
        }],
        no_jitter(cfg(ExecMode::Baseline)),
    );
    assert!(!hit);
    // fib(12) = 144 recursive calls dominate the instruction count.
    assert!(metrics.per_thread[0].instructions > 1000);
}

#[test]
fn tick_dyn_advances_clock_by_size() {
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("f", 1);
    fb.block("entry");
    let len = fb.param(0);
    fb.push(Inst::TickDyn {
        base: 3,
        per_unit: 2,
        size: Operand::Reg(len),
    });
    fb.ret_void();
    let f = fb.finish_into(&mut m);
    let cost = CostModel::default();
    let (metrics, _) = run(
        &m,
        &cost,
        &[ThreadSpec {
            func: f,
            args: vec![10],
        }],
        no_jitter(cfg(ExecMode::ClocksOnly)),
    );
    assert_eq!(metrics.per_thread[0].final_clock, 3 + 2 * 10);
}

#[test]
fn ticks_free_in_baseline_and_kendo() {
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("f", 0);
    fb.block("entry");
    for _ in 0..100 {
        fb.push(Inst::Tick { amount: 5 });
    }
    fb.compute(10);
    fb.ret_void();
    let f = fb.finish_into(&mut m);
    let cost = CostModel::default();
    let t = [ThreadSpec {
        func: f,
        args: vec![],
    }];
    let (base, _) = run(&m, &cost, &t, no_jitter(cfg(ExecMode::Baseline)));
    let (clk, _) = run(&m, &cost, &t, no_jitter(cfg(ExecMode::ClocksOnly)));
    let (kendo, _) = run(&m, &cost, &t, no_jitter(kendo_cfg(KendoParams::default())));
    assert!(
        clk.cycles > base.cycles + 150,
        "100 ticks cost ≥ 200 cycles"
    );
    // Kendo executes no ticks: same busy cycles as baseline (single thread,
    // exit is a det event but with one thread it is always the min).
    assert_eq!(kendo.per_thread[0].ticks_executed, 0);
    assert_eq!(base.per_thread[0].ticks_executed, 0);
    assert_eq!(clk.per_thread[0].ticks_executed, 100);
}

#[test]
fn kendo_chunked_clock_advances_on_stores() {
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("f", 0);
    fb.block("entry");
    let addr = fb.iconst(0);
    for k in 0..20 {
        fb.store(addr, k, 1i64);
    }
    fb.ret_void();
    let f = fb.finish_into(&mut m);
    let cost = CostModel::default();
    let (metrics, _) = run(
        &m,
        &cost,
        &[ThreadSpec {
            func: f,
            args: vec![],
        }],
        no_jitter(kendo_cfg(KendoParams {
            chunk_size: 8,
            interrupt_cost: 10,
        })),
    );
    // 20 stores → 2 full chunks of 8 → clock 16 (chunk granularity).
    assert_eq!(metrics.per_thread[0].final_clock, 16);
    assert_eq!(metrics.per_thread[0].retired_stores, 20);
}

#[test]
fn memset_counts_stores_and_writes_memory() {
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("f", 0);
    fb.block("entry");
    fb.builtin_void(
        detlock_ir::Builtin::Memset,
        vec![Operand::Imm(10), Operand::Imm(7), Operand::Imm(16)],
        Some(2),
    );
    let a = fb.iconst(10);
    let v = fb.load(a, 3);
    let out = fb.iconst(200);
    fb.store(out, 0, v);
    fb.ret_void();
    let f = fb.finish_into(&mut m);
    let cost = CostModel::default();
    let (metrics, _) = run(
        &m,
        &cost,
        &[ThreadSpec {
            func: f,
            args: vec![],
        }],
        no_jitter(cfg(ExecMode::Baseline)),
    );
    assert_eq!(metrics.per_thread[0].retired_stores, 17);
}

#[test]
fn cycle_limit_reported() {
    // Infinite loop must hit the limit, not hang.
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("spin", 0);
    let entry = fb.block("entry");
    fb.compute(2);
    fb.br(entry);
    let f = fb.finish_into(&mut m);
    let cost = CostModel::default();
    let mut c = no_jitter(cfg(ExecMode::Baseline));
    c.max_cycles = 10_000;
    let (metrics, hit) = run(
        &m,
        &cost,
        &[ThreadSpec {
            func: f,
            args: vec![],
        }],
        c,
    );
    assert!(hit);
    assert_eq!(metrics.cycles, 10_000);
}

#[test]
fn start_placement_reduces_det_wait_vs_end_placement() {
    // The Figure 15 mechanism: a lock waiter is released once every other
    // thread's logical clock passes its own bar; clocks only move at ticks,
    // so a runner inside a big block is "stale" by the unexecuted part of
    // the block with End placement, but runs ahead of execution with Start
    // placement. The effect needs *heterogeneous* per-iteration work (as in
    // Radiosity's variable-size tasks) so that bars land mid-block.
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("worker", 2); // (tid, iters)
    fb.block("entry");
    let head = fb.create_block("head");
    let pick = fb.create_block("pick");
    let small = fb.create_block("small");
    let medium = fb.create_block("medium");
    let large = fb.create_block("large");
    let huge = fb.create_block("huge");
    let lock_bb = fb.create_block("lock_bb");
    let next = fb.create_block("next");
    let done = fb.create_block("done");
    let tid = fb.param(0);
    let iters = fb.param(1);
    let i = fb.iconst(0);
    let seed0 = fb.add(tid, 12345);
    let state = fb.mov(seed0);
    fb.br(head);
    fb.switch_to(head);
    let c = fb.cmp(CmpOp::Lt, i, iters);
    fb.cond_br(c, pick, done);
    fb.switch_to(pick);
    // Pseudo-random size class per (thread, iteration).
    let state2 = fb.builtin(detlock_ir::Builtin::Rand, vec![Operand::Reg(state)], None);
    fb.mov_to(state, state2);
    let cls = fb.bin(BinOp::And, state2, 3);
    fb.switch(cls, vec![(0, small), (1, medium), (2, large)], huge);
    fb.switch_to(small);
    fb.compute(40);
    fb.br(lock_bb);
    fb.switch_to(medium);
    fb.compute(130);
    fb.br(lock_bb);
    fb.switch_to(large);
    fb.compute(260);
    fb.br(lock_bb);
    fb.switch_to(huge);
    fb.compute(400);
    fb.br(lock_bb);
    fb.switch_to(lock_bb);
    fb.lock(0i64);
    let a = fb.iconst(300);
    let v = fb.load(a, 0);
    let v2 = fb.add(v, 1);
    fb.store(a, 0, v2);
    fb.unlock(0i64);
    fb.br(next);
    fb.switch_to(next);
    fb.bin_to(BinOp::Add, i, i, 1);
    fb.br(head);
    fb.switch_to(done);
    fb.ret_void();
    let f = fb.finish_into(&mut m);
    let cost = CostModel::default();
    let threads: Vec<ThreadSpec> = (0..4)
        .map(|t| ThreadSpec {
            func: f,
            args: vec![t, 100],
        })
        .collect();

    let mk = |placement| {
        detlock_passes::pipeline::instrument(
            &m,
            &cost,
            &detlock_passes::pipeline::OptConfig::none(),
            placement,
            &[f],
        )
    };
    let start = mk(detlock_passes::plan::Placement::Start);
    let end = mk(detlock_passes::plan::Placement::End);
    let (ms, _) = run(
        &start.module,
        &cost,
        &threads,
        no_jitter(cfg(ExecMode::Det)),
    );
    let (me, _) = run(&end.module, &cost, &threads, no_jitter(cfg(ExecMode::Det)));
    assert!(
        ms.wait_cycles() < me.wait_cycles(),
        "ahead-of-time (start) placement should cut deterministic wait: \
         start={} end={} (cycles {} vs {})",
        ms.wait_cycles(),
        me.wait_cycles(),
        ms.cycles,
        me.cycles
    );
}

#[test]
fn bulk_sync_mode_is_deterministic_and_slower() {
    // CoreDet-style rounds (paper §II): deterministic across seeds, with a
    // much higher overhead than DetLock at small quanta — the reason the
    // paper adopts weak determinism instead.
    use detlock_vm::machine::BulkSyncParams;
    let (m, f) = counter_program(0, 20);
    let cost = CostModel::default();
    let threads = counter_threads(f, 4, 40);
    let mode = ExecMode::BulkSync(BulkSyncParams {
        quantum: 300,
        commit_base: 200,
        commit_per_store: 2,
    });
    let report = check_determinism(&m, &cost, &threads, &cfg(mode), &[1, 2, 99, 4242]);
    assert!(!report.any_hit_limit, "bulk-sync deadlocked");
    assert!(report.deterministic, "{:x?}", report.hashes);

    let (base, _) = run(&m, &cost, &threads, no_jitter(cfg(ExecMode::Baseline)));
    let (bulk, _) = run(&m, &cost, &threads, no_jitter(cfg(mode)));
    assert!(
        bulk.cycles as f64 > base.cycles as f64 * 1.2,
        "rounds + commits must cost real time: {} vs {}",
        bulk.cycles,
        base.cycles
    );
}

#[test]
fn bulk_sync_overhead_explodes_at_tiny_quanta() {
    // Uncontended variant (per-thread locks): with a shared lock the
    // dominant cost is that grants happen only at round boundaries (so
    // *long* quanta serialize handoffs — the other side of CoreDet's
    // tradeoff, covered by bulk_sync_mode_is_deterministic_and_slower).
    // With private locks, what varies is pure quantum-barrier + commit
    // frequency.
    use detlock_vm::machine::BulkSyncParams;
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("worker", 2); // (tid, iters)
    fb.block("entry");
    let head = fb.create_block("head");
    let body = fb.create_block("body");
    let done = fb.create_block("done");
    let tid = fb.param(0);
    let iters = fb.param(1);
    let i = fb.iconst(0);
    let my_lock = fb.add(tid, 100);
    fb.br(head);
    fb.switch_to(head);
    let c = fb.cmp(CmpOp::Lt, i, iters);
    fb.cond_br(c, body, done);
    fb.switch_to(body);
    fb.compute(3000);
    fb.lock(my_lock);
    let a = fb.add(tid, 500);
    let v = fb.load(a, 0);
    let v2 = fb.add(v, 1);
    fb.store(a, 0, v2);
    fb.unlock(my_lock);
    fb.bin_to(BinOp::Add, i, i, 1);
    fb.br(head);
    fb.switch_to(done);
    fb.ret_void();
    let f = fb.finish_into(&mut m);
    let cost = CostModel::default();
    let threads = counter_threads(f, 4, 2);
    let (base, _) = run(&m, &cost, &threads, no_jitter(cfg(ExecMode::Baseline)));
    let at = |quantum: u64| {
        let mode = ExecMode::BulkSync(BulkSyncParams {
            quantum,
            commit_base: 200,
            commit_per_store: 2,
        });
        let (r, hit) = run(&m, &cost, &threads, no_jitter(cfg(mode)));
        assert!(!hit);
        r.cycles as f64 / base.cycles as f64
    };
    let coarse = at(5000);
    let fine = at(100);
    assert!(
        fine > coarse * 1.5,
        "smaller quanta must cost much more: {fine:.2}x vs {coarse:.2}x"
    );
}

/// Crash-at-every-checkpoint chain: abort at the first checkpoint after
/// each (re)start, resume from it, repeat until the run finishes. The
/// final metrics and memory must be byte-identical to the uninterrupted
/// run — the determinism argument behind serve-side crash recovery.
#[test]
fn repeated_crash_resume_chain_matches_uninterrupted_run() {
    let (m, f) = instrumented_counter(8);
    let cost = CostModel::default();
    let threads = counter_threads(f, 4, 40);
    let config = cfg(ExecMode::Det);

    let (ref_metrics, ref_mem, ref_hit) =
        Machine::new(&m, &cost, &threads, config.clone()).run_with_memory();
    assert!(!ref_hit);

    for every in [700u64, 1777, 4096] {
        let mut machine = Machine::new(&m, &cost, &threads, config.clone());
        let mut crashes = 0u32;
        loop {
            let mut latest: Option<Checkpoint> = None;
            match machine.run_with_checkpoints(every, &mut |ck| {
                latest = Some(ck.clone());
                CkptControl::Abort
            }) {
                RunOutcome::Finished {
                    metrics,
                    memory,
                    hit_limit,
                    ..
                } => {
                    assert!(!hit_limit);
                    assert!(crashes > 0, "interval {every} never checkpointed");
                    assert_eq!(
                        metrics, ref_metrics,
                        "interval {every}: resumed metrics diverged after {crashes} crashes"
                    );
                    assert_eq!(memory, ref_mem, "interval {every}: memory diverged");
                    break;
                }
                RunOutcome::Aborted { at_cycle } => {
                    crashes += 1;
                    let ck = latest.expect("abort implies a checkpoint was sunk");
                    assert_eq!(ck.cycle(), at_cycle);
                    machine = Machine::resume(&m, &cost, config.clone(), &ck)
                        .expect("fingerprint matches");
                }
            }
        }
    }
}

/// Two identical runs agree on checkpoint digests cycle-for-cycle (deep
/// state equality, not just trace-hash equality); a different jitter seed
/// diverges the digests (the RNG position is part of machine state).
#[test]
fn checkpoint_digests_fingerprint_machine_state() {
    let (m, f) = instrumented_counter(8);
    let cost = CostModel::default();
    let threads = counter_threads(f, 4, 20);
    let collect = |config: MachineConfig| {
        let mut digests = Vec::new();
        let outcome =
            Machine::new(&m, &cost, &threads, config).run_with_checkpoints(1000, &mut |ck| {
                digests.push((ck.cycle(), ck.digest()));
                CkptControl::Continue
            });
        assert!(matches!(outcome, RunOutcome::Finished { .. }));
        digests
    };
    let a = collect(cfg(ExecMode::Det));
    let b = collect(cfg(ExecMode::Det));
    assert!(!a.is_empty());
    assert_eq!(a, b, "same config must give identical state digests");
    let c = collect(MachineConfig {
        jitter: Jitter::default().with_seed(99),
        ..cfg(ExecMode::Det)
    });
    assert_ne!(a, c, "jitter RNG position is machine state");
}

/// Resume refuses a checkpoint taken under a different config, module, or
/// thread count instead of silently diverging.
#[test]
fn resume_refuses_mismatched_fingerprint() {
    let (m, f) = instrumented_counter(8);
    let cost = CostModel::default();
    let threads = counter_threads(f, 4, 20);
    let config = cfg(ExecMode::Det);
    let ck = Machine::new(&m, &cost, &threads, config.clone()).snapshot();

    // Same everything: accepted.
    assert!(Machine::resume(&m, &cost, config.clone(), &ck).is_ok());
    // Different jitter seed: refused (the RNG streams would not line up).
    let other = MachineConfig {
        jitter: Jitter::default().with_seed(31337),
        ..config.clone()
    };
    assert!(Machine::resume(&m, &cost, other, &ck).is_err());
    // Different module shape: refused.
    let (m2, _) = counter_program(0, 3);
    assert!(Machine::resume(&m2, &cost, config.clone(), &ck).is_err());
    // Different memory geometry: refused.
    let smaller = MachineConfig {
        mem_words: 1 << 10,
        ..config
    };
    assert!(Machine::resume(&m, &cost, smaller, &ck).is_err());
}

/// `run_with_checkpoints(0, ...)` never calls the sink and matches `run`.
#[test]
fn zero_interval_disables_checkpointing() {
    let (m, f) = instrumented_counter(8);
    let cost = CostModel::default();
    let threads = counter_threads(f, 4, 10);
    let config = cfg(ExecMode::Det);
    let (ref_metrics, _) = run(&m, &cost, &threads, config.clone());
    let mut calls = 0u32;
    match Machine::new(&m, &cost, &threads, config).run_with_checkpoints(0, &mut |_| {
        calls += 1;
        CkptControl::Continue
    }) {
        RunOutcome::Finished { metrics, .. } => assert_eq!(metrics, ref_metrics),
        RunOutcome::Aborted { .. } => panic!("nothing aborted this run"),
    }
    assert_eq!(calls, 0);
}

#[test]
fn bulk_sync_handles_barriers() {
    use detlock_vm::machine::BulkSyncParams;
    // App barriers inside bulk-sync rounds must release correctly.
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("bar", 1);
    fb.block("entry");
    let after = fb.create_block("after");
    let tid = fb.param(0);
    let work = fb.mul(tid, 30);
    let i = fb.iconst(0);
    let head = fb.create_block("head");
    let body = fb.create_block("body");
    fb.br(head);
    fb.switch_to(head);
    let c = fb.cmp(CmpOp::Lt, i, work);
    fb.cond_br(c, body, after);
    fb.switch_to(body);
    fb.bin_to(BinOp::Add, i, i, 1);
    fb.br(head);
    fb.switch_to(after);
    fb.barrier(BarrierId(0));
    fb.compute(5);
    fb.ret_void();
    let f = fb.finish_into(&mut m);
    let cost = CostModel::default();
    let threads: Vec<ThreadSpec> = (0..4)
        .map(|t| ThreadSpec {
            func: f,
            args: vec![t],
        })
        .collect();
    let (metrics, hit) = run(
        &m,
        &cost,
        &threads,
        no_jitter(cfg(ExecMode::BulkSync(BulkSyncParams::default()))),
    );
    assert!(!hit, "barrier under bulk-sync must not deadlock");
    for t in &metrics.per_thread {
        assert_eq!(t.barrier_waits, 1);
    }
}
