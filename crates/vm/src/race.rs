//! Targeted empirical race confirmation.
//!
//! The static lockset analysis (in `detlock-analyze`) reports *potential*
//! races; this probe tries to make one manifest. A racy program run under
//! the nondeterministic `Baseline` mode (FCFS locks, seeded OS-noise
//! jitter) can finish with a timing-dependent memory image — so rerunning
//! across jitter seeds and diffing the final memories either produces a
//! concrete two-seed witness (the race is real) or fails to (the static
//! report is downgraded to a "may" race; absence of a witness is not a
//! proof of absence).

use crate::machine::{ExecMode, Machine, MachineConfig, ThreadSpec};
use crate::sanitizer::DynRace;
use detlock_ir::module::Module;
use detlock_passes::cost::CostModel;

/// Concrete evidence that a program races.
///
/// One witness type for both confirmation paths, so downstream consumers
/// of `detlint --confirm` see one format:
///
/// * [`RaceWitness::Divergence`] — the legacy empirical probe: two jitter
///   seeds under `Baseline` produced different final memories.
/// * [`RaceWitness::HappensBefore`] — a precise `detsan` witness: two
///   conflicting accesses with no happens-before edge, named down to the
///   instruction (the default confirmation path since the sanitizer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaceWitness {
    /// Two-seed final-memory divergence under nondeterministic `Baseline`.
    Divergence {
        /// Jitter seed of the reference run.
        seed_a: u64,
        /// Jitter seed of the run that disagreed with it.
        seed_b: u64,
        /// First memory word whose final value differs between the runs.
        addr: usize,
        /// The word's final value under `seed_a`.
        a: i64,
        /// The word's final value under `seed_b`.
        b: i64,
    },
    /// A happens-before race from [`crate::sanitizer`].
    HappensBefore(DynRace),
}

impl std::fmt::Display for RaceWitness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaceWitness::Divergence {
                seed_a,
                seed_b,
                addr,
                a,
                b,
            } => write!(
                f,
                "word {addr} finished as {a} under seed {seed_a} but {b} under seed {seed_b}"
            ),
            RaceWitness::HappensBefore(r) => write!(f, "{r}"),
        }
    }
}

/// Rerun the workload under `Baseline` (nondeterministic FCFS) across
/// `seeds`, diffing final memories; the first divergence is returned as a
/// witness. `None` means no divergence was observed — a race may still
/// exist on schedules the seeds did not produce.
pub fn confirm_race(
    module: &Module,
    cost: &CostModel,
    threads: &[ThreadSpec],
    base_cfg: &MachineConfig,
    seeds: &[u64],
) -> Option<RaceWitness> {
    assert!(!seeds.is_empty());
    let mut reference: Option<(u64, Vec<i64>)> = None;
    for &seed in seeds {
        let mut cfg = base_cfg.clone();
        cfg.mode = ExecMode::Baseline;
        cfg.jitter = cfg.jitter.with_seed(seed);
        let (_, mem, _) = Machine::new(module, cost, threads, cfg).run_with_memory();
        match &reference {
            None => reference = Some((seed, mem)),
            Some((seed_a, ref_mem)) => {
                if let Some(addr) = ref_mem.iter().zip(&mem).position(|(a, b)| a != b) {
                    return Some(RaceWitness::Divergence {
                        seed_a: *seed_a,
                        seed_b: seed,
                        addr,
                        a: ref_mem[addr],
                        b: mem[addr],
                    });
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use detlock_ir::builder::FunctionBuilder;
    use detlock_ir::inst::CmpOp;
    use detlock_ir::Module;

    const SEEDS: [u64; 6] = [1, 2, 7, 42, 1337, 31337];

    /// `iters` unlocked (or locked) read-modify-write increments of word 0.
    fn counter_module(iters: i64, locked: bool) -> Module {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("t", 1);
        fb.block("entry");
        let head = fb.create_block("head");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        let i = fb.iconst(0);
        let q = fb.iconst(0);
        fb.br(head);
        fb.switch_to(head);
        let c = fb.cmp(CmpOp::Lt, i, iters);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        if locked {
            fb.lock(1i64);
        }
        let v = fb.load(q, 0);
        let v2 = fb.add(v, 1);
        fb.store(q, 0, v2);
        if locked {
            fb.unlock(1i64);
        }
        fb.bin_to(detlock_ir::BinOp::Add, i, i, 1);
        fb.br(head);
        fb.switch_to(exit);
        fb.ret_void();
        fb.finish_into(&mut m);
        m
    }

    fn threads(n: u32) -> Vec<ThreadSpec> {
        (0..n)
            .map(|t| ThreadSpec {
                func: detlock_ir::FuncId(0),
                args: vec![t as i64],
            })
            .collect()
    }

    #[test]
    fn unlocked_counter_yields_a_witness() {
        let m = counter_module(300, false);
        let cost = CostModel::default();
        let w = confirm_race(&m, &cost, &threads(4), &MachineConfig::default(), &SEEDS)
            .expect("lost updates should surface across seeds");
        let RaceWitness::Divergence { addr, a, b, .. } = w else {
            panic!("the divergence probe reports divergence witnesses");
        };
        assert_eq!(addr, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn locked_counter_yields_none() {
        let m = counter_module(50, true);
        let cost = CostModel::default();
        let w = confirm_race(&m, &cost, &threads(4), &MachineConfig::default(), &SEEDS);
        assert_eq!(w, None, "mutual exclusion keeps the final state stable");
    }
}
