//! Chunk-based scheduling: min-clock arbitration over simulated
//! retired-store performance-counter clocks.

use super::{min_clock_turn, Decision, DetScheduler, ThreadView};

/// Chunked store-counter clock parameters (Table II). The paper notes
/// Kendo must balance chunk size by hand; `chunk_size` is that knob.
///
/// This type was `KendoParams` when the policy lived inside
/// `ExecMode::Kendo`; the old name remains as a deprecation alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkParams {
    /// Retired stores between performance-counter overflow interrupts.
    pub chunk_size: u64,
    /// Cycle cost of servicing one overflow interrupt.
    pub interrupt_cost: u64,
}

impl Default for ChunkParams {
    fn default() -> Self {
        ChunkParams {
            chunk_size: 1024,
            // A performance-counter overflow interrupt traps into the
            // kernel: order 10^3 cycles on the paper's era of hardware.
            interrupt_cost: 800,
        }
    }
}

/// The same turn rule as [`super::KendoSched`], but threads additionally
/// run fixed logical-work chunks between clock updates: the virtualized
/// store counter only surfaces at overflow interrupts, so the clock
/// advances in `chunk_size` units and each boundary costs
/// `interrupt_cost` cycles. Under `ExecMode::Kendo` (uninstrumented, no
/// tick instructions) this reproduces the paper's simulated-Kendo
/// baseline bit-for-bit; under `ExecMode::Det` it layers chunk clocks on
/// top of the compiler-placed ticks.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSched {
    params: ChunkParams,
}

impl ChunkSched {
    /// A chunk scheduler with the given counter parameters.
    pub fn new(params: ChunkParams) -> ChunkSched {
        ChunkSched { params }
    }
}

impl DetScheduler for ChunkSched {
    #[inline]
    fn decide(&mut self, threads: &[ThreadView]) -> Decision {
        Decision::Turn(min_clock_turn(threads))
    }

    fn chunk(&self) -> Option<ChunkParams> {
        Some(self.params)
    }
}
