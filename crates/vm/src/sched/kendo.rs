//! The reference policy: Kendo's min-clock arbitration.

use super::{min_clock_turn, Decision, DetScheduler, ThreadView};

/// Kendo-style arbitration on whatever drives the logical clocks (ticks
/// in `Det` mode): the unique thread with the minimum `(clock, tid)`
/// among runnable and arbitrating threads holds the turn for the round; a
/// contended acquirer bumps its clock by one and retries, and an acquire
/// additionally requires the lock's logical release to precede the
/// acquirer's clock. This is the policy the paper's DetLock measurements
/// use, extracted verbatim from the old arbiter loop.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KendoSched;

impl DetScheduler for KendoSched {
    #[inline]
    fn decide(&mut self, threads: &[ThreadView]) -> Decision {
        Decision::Turn(min_clock_turn(threads))
    }
}
