//! Deterministic-consistency batched commit rounds.

use super::{Decision, DetScheduler, Phase, ThreadView};

/// Deterministic-consistency-style scheduling (after Aviram & Ford's
/// workspace-consistency model): threads execute *freely* to their next
/// synchronization point — no per-acquire arbitration, no clock bumps
/// while contended — and once no live thread is runnable, every pending
/// synchronization operation commits in one deterministic batch, ordered
/// by `(clock, tid)`.
///
/// Within a batch the lock table evolves as grants land: a member whose
/// lock is still physically held when its slot comes (taken by an
/// earlier member, or by a holder that is itself blocked elsewhere in
/// the batch) simply stays blocked and joins a later batch. Because a
/// batch only forms at quiescence, every held lock's holder is itself in
/// the batch (or parked), so nested acquisitions drain batch-by-batch
/// instead of deadlocking.
///
/// Determinism argument: batch *membership* is fixed by program
/// structure — the batch forms exactly when every thread has reached its
/// next synchronization point, which is a per-thread deterministic
/// sequence — and batch *order* is a pure function of logical clocks,
/// which advance only at ticks and deterministic events. Jitter moves
/// the cycle at which quiescence happens, never who is in the batch or
/// in what order it commits, so lock orders, trace hashes, and final
/// clocks stay seed-invariant. They differ from [`super::KendoSched`]'s
/// on contended workloads by design — receipts are scheduler-keyed.
///
/// The policy is stateless: the batch is recomputed from the view at
/// quiescence and committed within the same round.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DcBatchSched;

impl DetScheduler for DcBatchSched {
    fn decide(&mut self, threads: &[ThreadView]) -> Decision {
        if threads.iter().any(|v| v.phase == Phase::Runnable) {
            return Decision::Turn(None);
        }
        let mut batch: Vec<u32> = threads
            .iter()
            .enumerate()
            .filter(|(_, v)| v.phase == Phase::Arbitrating)
            .map(|(tid, _)| tid as u32)
            .collect();
        if batch.is_empty() {
            return Decision::Turn(None);
        }
        batch.sort_unstable_by_key(|&tid| (threads[tid as usize].clock, tid));
        Decision::Batch(batch)
    }

    /// Contended members wait for the holder's release; bumping clocks
    /// while waiting would make final clocks depend on how many rounds
    /// the wait lasted — i.e. on the jitter seed.
    fn bumps_on_contention(&self) -> bool {
        false
    }

    /// Grants are ordered structurally by the batch, not by logical
    /// release precedence: the physical hold state alone gates a grant.
    fn uses_release_clocks(&self) -> bool {
        false
    }
}
