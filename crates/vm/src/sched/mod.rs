//! Pluggable deterministic scheduling policies.
//!
//! DetLock's contribution is the *instrumentation* — compiler-placed
//! logical clocks. The *arbitration policy* that consumes those clocks is
//! a separate axis: [`DetScheduler`] factors it out of the core round
//! loop. Given a per-round view of every thread (phase, logical clock,
//! pending countdown), a scheduler decides who may perform a
//! synchronization event this round and what the clock-bump policy on
//! contended acquires is. Three policies ship:
//!
//! * [`KendoSched`] — the reference policy: the unique thread with the
//!   minimum `(clock, tid)` among arbitration participants holds the
//!   turn; a contended acquirer deterministically bumps its clock and
//!   retries (Kendo's algorithm as adopted by DetLock).
//! * [`ChunkSched`] — the same turn rule, plus simulated retired-store
//!   performance-counter clocks: threads run fixed logical-work chunks
//!   ([`ChunkParams::chunk_size`] stores) between clock updates, each
//!   costing an overflow-interrupt ([`ChunkParams::interrupt_cost`]).
//!   This subsumes the old `ExecMode::Kendo` special-casing — Table II's
//!   simulated Kendo is `ExecMode::Kendo` (uninstrumented) + `ChunkSched`.
//! * [`DcBatchSched`] — deterministic-consistency-style rounds (Aviram &
//!   Ford): all runnable threads execute freely to their next
//!   synchronization point; once no thread is runnable, the pending
//!   synchronization operations commit in one deterministic batch,
//!   ordered by `(clock, tid)`.
//!
//! # What a scheduler may observe
//!
//! Exactly the [`ThreadView`] slice: thread phase, logical clock, pending
//! countdown. Nothing else — no cycle counter, no jitter RNG, no memory,
//! no lock table. That restriction is the determinism argument: every
//! view field is itself jitter-invariant in deterministic modes (clocks
//! advance only by ticks, store chunks, and deterministic sync events;
//! phases change only at deterministic points), so any pure function of
//! the view sequence is jitter-invariant too. A scheduler that peeked at
//! wall-clock state (cycles, RNG position) would leak seed-dependence
//! into the lock order and break the weak-determinism guarantee.
//!
//! Because different policies legitimately produce different lock orders
//! (and hence different trace hashes, receipts, and sanitizer reports),
//! the scheduler is part of the job identity: receipts are
//! scheduler-keyed, and a [`crate::machine::Checkpoint`] refuses to
//! resume under a different scheduler (see
//! [`crate::machine::ResumeError::SchedulerMismatch`]).
//!
//! Selection mirrors [`crate::backend::Backend`]: a process-wide override
//! installed by a `--scheduler` CLI flag, then the `DETLOCK_SCHEDULER`
//! environment variable (`kendo` | `chunk[:SIZE[:COST]]` | `dc-batch`),
//! then [`Sched::Kendo`].

mod chunk;
mod dc_batch;
mod kendo;

pub use chunk::{ChunkParams, ChunkSched};
pub use dc_batch::DcBatchSched;
pub use kendo::KendoSched;

use std::sync::Mutex;
use std::sync::OnceLock;

/// What a scheduler sees of one thread in one round. The deliberately
/// minimal observation surface — see the module docs for why nothing
/// cycle- or jitter-dependent is exposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadView {
    /// Where the thread is in its lifecycle this round.
    pub phase: Phase,
    /// The thread's logical clock.
    pub clock: u64,
    /// Cycles left in the instruction currently occupying the core.
    pub pending: u64,
}

/// Thread lifecycle phase, as visible to a scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Executing instructions (or mid-instruction countdown).
    Runnable,
    /// Blocked on a synchronization event that needs the scheduler's
    /// permission: a lock acquire, a barrier arrival, or a thread exit.
    Arbitrating,
    /// Parked with no pending decision (inside a barrier, or waiting for
    /// a bulk-sync round): not a turn candidate.
    Parked,
    /// Finished.
    Done,
}

/// One round's scheduling decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// At most one thread may perform its synchronization event this
    /// round (min-clock-style arbitration). `None` parks every
    /// arbitrating thread for the round.
    Turn(Option<u32>),
    /// Commit a whole synchronization batch this round: the listed
    /// threads perform their pending events in order, against the lock
    /// table as it evolves within the batch. Threads whose lock is still
    /// physically held when their turn comes stay blocked and join a
    /// later batch.
    Batch(Vec<u32>),
}

/// A deterministic scheduling policy. Implementations must be pure
/// functions of the [`ThreadView`] sequence (plus their own
/// [`save_state`](DetScheduler::save_state)-captured state): the round
/// loop calls [`decide`](DetScheduler::decide) once per arbitration round
/// in deterministic modes.
pub trait DetScheduler {
    /// The turn (or batch) for this round.
    fn decide(&mut self, threads: &[ThreadView]) -> Decision;

    /// Clock-bump policy on contended acquires: `true` means a turn
    /// holder whose lock is not logically free bumps its clock by one and
    /// retries (Kendo); `false` means it simply waits.
    fn bumps_on_contention(&self) -> bool {
        true
    }

    /// Whether an acquire additionally requires the lock's release clock
    /// to precede the acquirer's clock (Kendo's logical-release rule).
    /// Policies that order grants structurally (e.g. batch commit) use
    /// the physical hold state alone.
    fn uses_release_clocks(&self) -> bool {
        true
    }

    /// Chunked store-counter clock parameters, if this policy drives
    /// clocks from simulated retired-store performance counters.
    fn chunk(&self) -> Option<ChunkParams> {
        None
    }

    /// Scheduler-private state to ride a [`crate::machine::Checkpoint`].
    /// All built-in policies are stateless (their decisions are pure
    /// functions of the view), so this is empty — but the mechanism is
    /// part of the contract: a stateful policy that did not checkpoint
    /// its state would silently diverge on resume.
    fn save_state(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restore [`save_state`](DetScheduler::save_state)-captured state.
    fn load_state(&mut self, _state: &[u64]) {}
}

/// Which deterministic scheduling policy arbitrates synchronization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sched {
    /// Kendo-style min-`(clock, tid)` arbitration (the reference).
    #[default]
    Kendo,
    /// Min-clock arbitration over chunked store-counter clocks.
    Chunk(ChunkParams),
    /// Deterministic-consistency batched commit rounds.
    DcBatch,
}

/// Process-wide override installed by `--scheduler` (params make this a
/// `Mutex<Option<..>>` rather than the atomic tag `Backend` uses).
static PROCESS_DEFAULT: Mutex<Option<Sched>> = Mutex::new(None);

impl Sched {
    /// Parse a CLI/env spelling: `kendo`, `chunk`, `chunk:SIZE`,
    /// `chunk:SIZE:COST`, `dc-batch`.
    pub fn parse(s: &str) -> Result<Sched, String> {
        match s {
            "kendo" => return Ok(Sched::Kendo),
            "chunk" => return Ok(Sched::Chunk(ChunkParams::default())),
            "dc-batch" | "dcbatch" | "dc_batch" => return Ok(Sched::DcBatch),
            _ => {}
        }
        if let Some(rest) = s.strip_prefix("chunk:") {
            let mut it = rest.split(':');
            let size = it
                .next()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&v| v > 0);
            let cost = match it.next() {
                None => Some(ChunkParams::default().interrupt_cost),
                Some(v) => v.parse::<u64>().ok(),
            };
            if let (Some(chunk_size), Some(interrupt_cost), None) = (size, cost, it.next()) {
                return Ok(Sched::Chunk(ChunkParams {
                    chunk_size,
                    interrupt_cost,
                }));
            }
        }
        Err(format!(
            "unknown scheduler '{s}' (expected 'kendo', 'chunk[:SIZE[:COST]]', or 'dc-batch')"
        ))
    }

    /// The policy family name (no parameters).
    pub fn label(self) -> &'static str {
        match self {
            Sched::Kendo => "kendo",
            Sched::Chunk(_) => "chunk",
            Sched::DcBatch => "dc-batch",
        }
    }

    /// The full canonical spelling, round-tripped by [`Sched::parse`].
    /// Default chunk parameters print as plain `chunk` so the common
    /// spelling stays stable in identity keys and receipts.
    pub fn spec(self) -> String {
        match self {
            Sched::Chunk(p) if p != ChunkParams::default() => {
                format!("chunk:{}:{}", p.chunk_size, p.interrupt_cost)
            }
            other => other.label().to_string(),
        }
    }

    /// The chunked store-counter parameters, if this is [`Sched::Chunk`].
    pub fn chunk_params(self) -> Option<ChunkParams> {
        match self {
            Sched::Chunk(p) => Some(p),
            _ => None,
        }
    }

    /// Words folded into the checkpoint fingerprint: a policy tag plus
    /// its parameters. Restoring a checkpoint under a different scheduler
    /// (or the same policy with different parameters) must be refused —
    /// unlike the execution backend, schedulers are *not* interchangeable
    /// executors of the same schedule.
    pub(crate) fn fingerprint_words(self) -> [u64; 3] {
        match self {
            Sched::Kendo => [0, 0, 0],
            Sched::Chunk(p) => [1, p.chunk_size, p.interrupt_cost],
            Sched::DcBatch => [2, 0, 0],
        }
    }

    /// Install a process-wide default, overriding `DETLOCK_SCHEDULER`.
    /// Called by the `--scheduler` flag of the CLI tools so every machine
    /// built afterwards uses the requested policy.
    pub fn set_process_default(self) {
        *PROCESS_DEFAULT.lock().unwrap() = Some(self);
    }

    /// The scheduler a fresh [`crate::machine::MachineConfig`] gets: the
    /// process override if installed, else `DETLOCK_SCHEDULER` (read once
    /// and cached), else [`Sched::Kendo`].
    ///
    /// # Panics
    /// On an unparseable `DETLOCK_SCHEDULER` value — a misconfigured
    /// environment should fail loudly, not silently fall back.
    pub fn resolve() -> Sched {
        if let Some(s) = *PROCESS_DEFAULT.lock().unwrap() {
            return s;
        }
        static ENV: OnceLock<Option<Sched>> = OnceLock::new();
        ENV.get_or_init(|| {
            std::env::var("DETLOCK_SCHEDULER").ok().map(|v| {
                Sched::parse(&v).unwrap_or_else(|e| panic!("invalid DETLOCK_SCHEDULER: {e}"))
            })
        })
        .unwrap_or(Sched::Kendo)
    }

    /// Build the policy implementation (static enum dispatch, mirroring
    /// the backend's `ExecImpl`).
    pub(crate) fn build(self) -> SchedImpl {
        match self {
            Sched::Kendo => SchedImpl::Kendo(KendoSched),
            Sched::Chunk(p) => SchedImpl::Chunk(ChunkSched::new(p)),
            Sched::DcBatch => SchedImpl::DcBatch(DcBatchSched),
        }
    }
}

impl std::fmt::Display for Sched {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.spec())
    }
}

/// Static enum dispatch over the built-in policies (no vtable in the
/// round loop).
pub(crate) enum SchedImpl {
    Kendo(KendoSched),
    Chunk(ChunkSched),
    DcBatch(DcBatchSched),
}

impl DetScheduler for SchedImpl {
    #[inline]
    fn decide(&mut self, threads: &[ThreadView]) -> Decision {
        match self {
            SchedImpl::Kendo(s) => s.decide(threads),
            SchedImpl::Chunk(s) => s.decide(threads),
            SchedImpl::DcBatch(s) => s.decide(threads),
        }
    }

    fn bumps_on_contention(&self) -> bool {
        match self {
            SchedImpl::Kendo(s) => s.bumps_on_contention(),
            SchedImpl::Chunk(s) => s.bumps_on_contention(),
            SchedImpl::DcBatch(s) => s.bumps_on_contention(),
        }
    }

    fn uses_release_clocks(&self) -> bool {
        match self {
            SchedImpl::Kendo(s) => s.uses_release_clocks(),
            SchedImpl::Chunk(s) => s.uses_release_clocks(),
            SchedImpl::DcBatch(s) => s.uses_release_clocks(),
        }
    }

    fn chunk(&self) -> Option<ChunkParams> {
        match self {
            SchedImpl::Kendo(s) => s.chunk(),
            SchedImpl::Chunk(s) => s.chunk(),
            SchedImpl::DcBatch(s) => s.chunk(),
        }
    }

    fn save_state(&self) -> Vec<u64> {
        match self {
            SchedImpl::Kendo(s) => s.save_state(),
            SchedImpl::Chunk(s) => s.save_state(),
            SchedImpl::DcBatch(s) => s.save_state(),
        }
    }

    fn load_state(&mut self, state: &[u64]) {
        match self {
            SchedImpl::Kendo(s) => s.load_state(state),
            SchedImpl::Chunk(s) => s.load_state(state),
            SchedImpl::DcBatch(s) => s.load_state(state),
        }
    }
}

/// The min-`(clock, tid)` turn over runnable and arbitrating threads —
/// shared by [`KendoSched`] and [`ChunkSched`].
pub(crate) fn min_clock_turn(threads: &[ThreadView]) -> Option<u32> {
    let mut best: Option<(u64, u32)> = None;
    for (tid, v) in threads.iter().enumerate() {
        if matches!(v.phase, Phase::Parked | Phase::Done) {
            continue;
        }
        let key = (v.clock, tid as u32);
        if best.is_none_or(|b| key < b) {
            best = Some(key);
        }
    }
    best.map(|(_, tid)| tid)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(phase: Phase, clock: u64) -> ThreadView {
        ThreadView {
            phase,
            clock,
            pending: 0,
        }
    }

    #[test]
    fn parse_round_trips_specs() {
        for s in [
            Sched::Kendo,
            Sched::Chunk(ChunkParams::default()),
            Sched::Chunk(ChunkParams {
                chunk_size: 512,
                interrupt_cost: 900,
            }),
            Sched::DcBatch,
        ] {
            assert_eq!(Sched::parse(&s.spec()), Ok(s));
        }
        assert_eq!(Sched::parse("dcbatch"), Ok(Sched::DcBatch));
        assert_eq!(
            Sched::parse("chunk:64"),
            Ok(Sched::Chunk(ChunkParams {
                chunk_size: 64,
                ..ChunkParams::default()
            }))
        );
        assert!(Sched::parse("fifo").is_err());
        assert!(Sched::parse("chunk:0").is_err());
        assert!(Sched::parse("chunk:1:2:3").is_err());
    }

    #[test]
    fn default_chunk_spec_is_bare() {
        assert_eq!(Sched::Chunk(ChunkParams::default()).spec(), "chunk");
        assert_eq!(
            Sched::Chunk(ChunkParams {
                chunk_size: 64,
                interrupt_cost: 800,
            })
            .spec(),
            "chunk:64:800"
        );
    }

    #[test]
    fn fingerprints_distinguish_policies_and_params() {
        let all = [
            Sched::Kendo,
            Sched::Chunk(ChunkParams::default()),
            Sched::Chunk(ChunkParams {
                chunk_size: 64,
                interrupt_cost: 800,
            }),
            Sched::DcBatch,
        ];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                assert_eq!(
                    a.fingerprint_words() == b.fingerprint_words(),
                    i == j,
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn kendo_picks_min_clock_breaking_ties_by_tid() {
        let mut s = KendoSched;
        let views = [
            v(Phase::Runnable, 5),
            v(Phase::Arbitrating, 3),
            v(Phase::Arbitrating, 3),
            v(Phase::Parked, 0),
            v(Phase::Done, 0),
        ];
        assert_eq!(s.decide(&views), Decision::Turn(Some(1)));
    }

    #[test]
    fn dc_batch_waits_for_quiescence_then_commits_in_clock_order() {
        let mut s = DcBatchSched;
        let running = [v(Phase::Runnable, 9), v(Phase::Arbitrating, 1)];
        assert_eq!(s.decide(&running), Decision::Turn(None));
        let quiescent = [
            v(Phase::Arbitrating, 9),
            v(Phase::Arbitrating, 2),
            v(Phase::Parked, 0),
            v(Phase::Arbitrating, 2),
        ];
        assert_eq!(s.decide(&quiescent), Decision::Batch(vec![1, 3, 0]));
    }

    #[test]
    fn built_policies_expose_their_contracts() {
        assert!(Sched::Kendo.build().bumps_on_contention());
        assert!(Sched::Kendo.build().uses_release_clocks());
        assert_eq!(Sched::Kendo.build().chunk(), None);
        let p = ChunkParams {
            chunk_size: 7,
            interrupt_cost: 11,
        };
        assert_eq!(Sched::Chunk(p).build().chunk(), Some(p));
        let dc = Sched::DcBatch.build();
        assert!(!dc.bumps_on_contention());
        assert!(!dc.uses_release_clocks());
        assert!(dc.save_state().is_empty());
    }
}
