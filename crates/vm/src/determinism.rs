//! Run-to-run determinism checking.
//!
//! *Weak determinism* (the paper's guarantee, after Kendo) means the lock
//! acquisition order of a race-free program is identical on every run with
//! the same input, regardless of timing. The simulator's jitter seed models
//! timing perturbation; [`check_determinism`] reruns a workload across seeds
//! and compares the acquisition-order fingerprints.

use crate::machine::{run, MachineConfig, ThreadSpec};
use crate::metrics::RunMetrics;
use detlock_passes::cost::CostModel;
use detlock_ir::module::Module;

/// Result of a multi-seed determinism probe.
#[derive(Debug, Clone)]
pub struct DeterminismReport {
    /// Acquisition-order hash per seed.
    pub hashes: Vec<u64>,
    /// Whether all seeds produced the same order.
    pub deterministic: bool,
    /// Metrics of the first run (for inspection).
    pub first: RunMetrics,
    /// Whether any run hit the cycle limit.
    pub any_hit_limit: bool,
}

/// Run the workload once per seed and compare lock-acquisition orders.
pub fn check_determinism(
    module: &Module,
    cost: &CostModel,
    threads: &[ThreadSpec],
    base_cfg: &MachineConfig,
    seeds: &[u64],
) -> DeterminismReport {
    assert!(!seeds.is_empty());
    let mut hashes = Vec::with_capacity(seeds.len());
    let mut first: Option<RunMetrics> = None;
    let mut any_hit_limit = false;
    for &seed in seeds {
        let mut cfg = base_cfg.clone();
        cfg.jitter = cfg.jitter.with_seed(seed);
        let (metrics, hit) = run(module, cost, threads, cfg);
        any_hit_limit |= hit;
        hashes.push(metrics.lock_order_hash);
        if first.is_none() {
            first = Some(metrics);
        }
    }
    let deterministic = hashes.windows(2).all(|w| w[0] == w[1]);
    DeterminismReport {
        hashes,
        deterministic,
        first: first.unwrap(),
        any_hit_limit,
    }
}
