//! Run-to-run determinism checking.
//!
//! *Weak determinism* (the paper's guarantee, after Kendo) means the lock
//! acquisition order of a race-free program is identical on every run with
//! the same input, regardless of timing. The simulator's jitter seed models
//! timing perturbation; [`check_determinism`] reruns a workload across seeds
//! and compares the acquisition-order fingerprints.

use crate::machine::{run, MachineConfig, ThreadSpec};
use crate::metrics::RunMetrics;
use detlock_ir::module::Module;
use detlock_passes::cost::CostModel;

/// Result of a multi-seed determinism probe.
#[derive(Debug, Clone)]
pub struct DeterminismReport {
    /// Acquisition-order hash per seed.
    pub hashes: Vec<u64>,
    /// Whether all seeds produced the same order.
    pub deterministic: bool,
    /// Metrics of the first run (for inspection).
    pub first: RunMetrics,
    /// Whether any run hit the cycle limit.
    pub any_hit_limit: bool,
    /// On violation, the first diverging acquisition between the first run
    /// and the earliest run that disagreed with it.
    pub divergence: Option<Divergence>,
}

/// The first point where two runs' lock-acquisition sequences differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Jitter seed of the reference (first) run.
    pub seed_a: u64,
    /// Jitter seed of the earliest run disagreeing with the reference.
    pub seed_b: u64,
    /// Index of the first differing acquisition.
    pub index: usize,
    /// `(lock_id, tid)` the reference run acquired at `index`, if the
    /// recorded (bounded) prefix reaches that far.
    pub a: Option<(i64, u32)>,
    /// `(lock_id, tid)` the diverging run acquired at `index`.
    pub b: Option<(i64, u32)>,
}

/// First index where two acquisition sequences differ; `None` if one is a
/// prefix of the other and no element disagrees (divergence lies beyond the
/// recorded window, or the sequences are identical).
fn first_diff(a: &[(i64, u32)], b: &[(i64, u32)]) -> Option<usize> {
    let n = a.len().min(b.len());
    (0..n).find(|&i| a[i] != b[i]).or({
        if a.len() != b.len() {
            Some(n)
        } else {
            None
        }
    })
}

/// Run the workload once per seed and compare lock-acquisition orders.
pub fn check_determinism(
    module: &Module,
    cost: &CostModel,
    threads: &[ThreadSpec],
    base_cfg: &MachineConfig,
    seeds: &[u64],
) -> DeterminismReport {
    assert!(!seeds.is_empty());
    let mut hashes = Vec::with_capacity(seeds.len());
    let mut first: Option<RunMetrics> = None;
    let mut any_hit_limit = false;
    let mut divergence: Option<Divergence> = None;
    for &seed in seeds {
        let mut cfg = base_cfg.clone();
        cfg.jitter = cfg.jitter.with_seed(seed);
        let (metrics, hit) = run(module, cost, threads, cfg);
        any_hit_limit |= hit;
        hashes.push(metrics.lock_order_hash);
        match &first {
            None => first = Some(metrics),
            Some(reference) => {
                if divergence.is_none() && metrics.lock_order_hash != reference.lock_order_hash {
                    let idx = first_diff(&reference.lock_order, &metrics.lock_order);
                    divergence = Some(Divergence {
                        seed_a: seeds[0],
                        seed_b: seed,
                        // Hashes disagreed but the bounded recorded prefixes
                        // agree: the divergence lies past the window.
                        index: idx.unwrap_or(reference.lock_order.len()),
                        a: idx.and_then(|i| reference.lock_order.get(i).copied()),
                        b: idx.and_then(|i| metrics.lock_order.get(i).copied()),
                    });
                }
            }
        }
    }
    let deterministic = hashes.windows(2).all(|w| w[0] == w[1]);
    DeterminismReport {
        hashes,
        deterministic,
        first: first.unwrap(),
        any_hit_limit,
        divergence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_diff_finds_earliest_disagreement() {
        let a = [(1i64, 0u32), (2, 1), (3, 0)];
        let b = [(1i64, 0u32), (2, 0), (3, 0)];
        assert_eq!(first_diff(&a, &b), Some(1));
        assert_eq!(first_diff(&a, &a), None);
    }

    #[test]
    fn first_diff_on_prefix_points_past_the_shorter() {
        let a = [(1i64, 0u32), (2, 1)];
        let b = [(1i64, 0u32), (2, 1), (3, 0)];
        assert_eq!(first_diff(&a, &b), Some(2));
        assert_eq!(first_diff(&b, &a), Some(2));
        let empty: [(i64, u32); 0] = [];
        assert_eq!(first_diff(&empty, &empty), None);
        assert_eq!(first_diff(&empty, &a), Some(0));
    }
}
