//! Run metrics produced by the simulator and overhead arithmetic used by the
//! Table I / Table II harnesses.

/// Per-thread counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadMetrics {
    /// Instructions committed (ticks included when executed).
    pub instructions: u64,
    /// Cycles spent making progress (issue + multi-cycle completion).
    pub busy_cycles: u64,
    /// Cycles stalled waiting: lock arbitration, barrier, turn waits.
    pub wait_cycles: u64,
    /// Lock acquisitions performed.
    pub lock_acquires: u64,
    /// Barrier arrivals.
    pub barrier_waits: u64,
    /// Tick instructions executed.
    pub ticks_executed: u64,
    /// Final logical clock.
    pub final_clock: u64,
    /// Retired stores (drives the simulated-Kendo performance counter).
    pub retired_stores: u64,
    /// Deterministic clock bumps performed while spinning on a lock.
    pub lock_clock_bumps: u64,
    /// Cycle at which the thread finished.
    pub finish_cycle: u64,
}

/// Whole-run metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Wall cycles until the last thread finished.
    pub cycles: u64,
    /// Per-thread counters.
    pub per_thread: Vec<ThreadMetrics>,
    /// FNV-1a hash over the global lock-acquisition sequence
    /// `(lock_id, tid)` — equal hashes across runs ⇒ same order.
    pub lock_order_hash: u64,
    /// The recorded prefix of the acquisition sequence (bounded).
    pub lock_order: Vec<(i64, u32)>,
    /// Simulated clock frequency used for the locks/sec conversion.
    pub ghz: f64,
}

impl RunMetrics {
    /// Total instructions across threads.
    pub fn instructions(&self) -> u64 {
        self.per_thread.iter().map(|t| t.instructions).sum()
    }

    /// Total lock acquisitions across threads.
    pub fn lock_acquires(&self) -> u64 {
        self.per_thread.iter().map(|t| t.lock_acquires).sum()
    }

    /// Total wait cycles across threads.
    pub fn wait_cycles(&self) -> u64 {
        self.per_thread.iter().map(|t| t.wait_cycles).sum()
    }

    /// Total ticks executed across threads.
    pub fn ticks_executed(&self) -> u64 {
        self.per_thread.iter().map(|t| t.ticks_executed).sum()
    }

    /// Simulated seconds of the run.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / (self.ghz * 1e9)
    }

    /// Lock acquisitions per simulated second (the paper's "Locks/sec").
    pub fn locks_per_sec(&self) -> f64 {
        let s = self.seconds();
        if s == 0.0 {
            0.0
        } else {
            self.lock_acquires() as f64 / s
        }
    }

    /// Percentage overhead of this run versus a baseline run of the same
    /// workload (the paper's Table I cells): `(self - base) / base * 100`.
    pub fn overhead_pct(&self, baseline: &RunMetrics) -> f64 {
        if baseline.cycles == 0 {
            return 0.0;
        }
        (self.cycles as f64 - baseline.cycles as f64) / baseline.cycles as f64 * 100.0
    }
}

/// FNV-1a, used to fingerprint lock-acquisition order.
#[derive(Debug, Clone)]
pub struct OrderHasher(u64);

impl Default for OrderHasher {
    fn default() -> Self {
        OrderHasher(0xcbf29ce484222325)
    }
}

impl OrderHasher {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one acquisition event into the hash.
    pub fn record(&mut self, lock: i64, tid: u32) {
        let mut h = self.0;
        for b in lock.to_le_bytes().iter().chain(tid.to_le_bytes().iter()) {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        self.0 = h;
    }

    /// The current hash value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(cycles: u64, locks: u64) -> RunMetrics {
        RunMetrics {
            cycles,
            per_thread: vec![ThreadMetrics {
                lock_acquires: locks,
                ..Default::default()
            }],
            lock_order_hash: 0,
            lock_order: vec![],
            ghz: 2.66,
        }
    }

    #[test]
    fn overhead_pct() {
        let base = metrics(1000, 0);
        let slow = metrics(1200, 0);
        assert!((slow.overhead_pct(&base) - 20.0).abs() < 1e-9);
        assert!((base.overhead_pct(&base)).abs() < 1e-9);
    }

    #[test]
    fn locks_per_sec_conversion() {
        // 2.66 GHz, 2.66e9 cycles = 1 simulated second, 500 locks.
        let m = metrics(2_660_000_000, 500);
        assert!((m.seconds() - 1.0).abs() < 1e-9);
        assert!((m.locks_per_sec() - 500.0).abs() < 1e-6);
    }

    #[test]
    fn zero_cycles_guard() {
        let z = metrics(0, 10);
        assert_eq!(z.locks_per_sec(), 0.0);
        assert_eq!(z.overhead_pct(&z), 0.0);
    }

    #[test]
    fn order_hash_is_order_sensitive() {
        let mut a = OrderHasher::new();
        a.record(1, 0);
        a.record(2, 1);
        let mut b = OrderHasher::new();
        b.record(2, 1);
        b.record(1, 0);
        assert_ne!(a.value(), b.value());
        let mut c = OrderHasher::new();
        c.record(1, 0);
        c.record(2, 1);
        assert_eq!(a.value(), c.value());
    }
}
