//! Execution-backend selection.
//!
//! The simulator has two ways to execute an instrumented module under the
//! one determinism layer (arbiter, logical clocks, checkpoints, sanitizer):
//!
//! * [`Backend::Interp`] — the tree-walking interpreter: decodes the IR
//!   instruction-by-instruction on every step. It is the semantic *oracle*:
//!   simple enough to audit against the paper.
//! * [`Backend::Threaded`] — the threaded-code engine (see
//!   [`crate::lower`]): lowers the module once into a flat pre-decoded
//!   program (opcodes with pre-resolved operand slots, jump targets as
//!   array indices, costs baked in) and dispatches on that. Differentially
//!   validated against the interpreter: byte-identical trace hashes,
//!   metrics, receipts, and sanitizer reports on every workload × opt
//!   config × jitter seed.
//!
//! Selection is resolved once per [`crate::machine::MachineConfig`]
//! construction, in priority order: a process-wide override installed by a
//! `--backend` CLI flag ([`Backend::set_process_default`]), then the
//! `DETLOCK_BACKEND` environment variable (`interp` | `threaded`), then
//! [`Backend::Interp`]. The CI backend matrix reruns the whole tier-1 test
//! suite and the serve smoke test under `DETLOCK_BACKEND=threaded` without
//! touching a single call site.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which execution engine runs instructions under the determinism core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Tree-walking interpreter over the IR (the oracle).
    #[default]
    Interp,
    /// Flat pre-decoded threaded-code program (see [`crate::lower`]).
    Threaded,
}

/// Process-wide override installed by `--backend`: 0 = unset, else tag+1.
static PROCESS_DEFAULT: AtomicU8 = AtomicU8::new(0);

impl Backend {
    /// Parse a CLI/env spelling.
    pub fn parse(s: &str) -> Result<Backend, String> {
        match s {
            "interp" | "interpreter" => Ok(Backend::Interp),
            "threaded" => Ok(Backend::Threaded),
            other => Err(format!(
                "unknown backend '{other}' (expected 'interp' or 'threaded')"
            )),
        }
    }

    /// The canonical spelling (accepted back by [`Backend::parse`]).
    pub fn label(self) -> &'static str {
        match self {
            Backend::Interp => "interp",
            Backend::Threaded => "threaded",
        }
    }

    /// Install a process-wide default, overriding `DETLOCK_BACKEND`. Called
    /// by the `--backend` flag of the CLI tools so every machine built
    /// afterwards (including by library code that never saw the flag) uses
    /// the requested engine.
    pub fn set_process_default(self) {
        PROCESS_DEFAULT.store(self as u8 + 1, Ordering::Relaxed);
    }

    /// The backend a fresh [`crate::machine::MachineConfig`] gets: the
    /// process override if installed, else `DETLOCK_BACKEND` (read once and
    /// cached), else [`Backend::Interp`].
    ///
    /// # Panics
    /// On an unparseable `DETLOCK_BACKEND` value — a misconfigured
    /// environment should fail loudly, not silently fall back to the
    /// interpreter.
    pub fn resolve() -> Backend {
        match PROCESS_DEFAULT.load(Ordering::Relaxed) {
            1 => return Backend::Interp,
            2 => return Backend::Threaded,
            _ => {}
        }
        static ENV: OnceLock<Option<Backend>> = OnceLock::new();
        ENV.get_or_init(|| {
            std::env::var("DETLOCK_BACKEND").ok().map(|v| {
                Backend::parse(&v).unwrap_or_else(|e| panic!("invalid DETLOCK_BACKEND: {e}"))
            })
        })
        .unwrap_or(Backend::Interp)
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_labels() {
        for b in [Backend::Interp, Backend::Threaded] {
            assert_eq!(Backend::parse(b.label()), Ok(b));
        }
        assert_eq!(Backend::parse("interpreter"), Ok(Backend::Interp));
        assert!(Backend::parse("jit").is_err());
    }

    #[test]
    fn default_is_the_oracle() {
        assert_eq!(Backend::default(), Backend::Interp);
    }
}
