//! `dlc` — the DetLock compiler driver.
//!
//! Parse a textual IR module, run the DetLock instrumentation pass, and
//! either dump the instrumented program or execute it on the simulated
//! multicore:
//!
//! ```text
//! dlc prog.dir                          # instrument (all opts), dump text
//! dlc prog.dir --opt none --emit dot    # Graphviz of each function
//! dlc prog.dir --run main --threads 4 --mode det --args 0,100
//! dlc prog.dir --run main --mode baseline --seed 7
//! dlc prog.dir --estimates my_costs.txt # load an instructions estimate file
//! ```
//!
//! `--mode` ∈ {baseline, clocks, det, kendo}; `--opt` ∈ {none, o1, o2, o3,
//! o4, all}; `--placement` ∈ {start, end}. With `--run`, each thread gets
//! the same entry function and arguments, except that the literal `tid` in
//! `--args` is replaced by the thread index. `--print-passes` lists the
//! pass pipeline the selected `--opt`/`--placement` lower to and exits;
//! `--pass-stats` prints per-pass telemetry after instrumenting.
//! `--compile-threads N` (or `DETLOCK_COMPILE_THREADS`) sizes the compile
//! pool and routes the compile through the plan cache — output is
//! byte-identical at any setting. `--backend interp|threaded` (or
//! `DETLOCK_BACKEND`) picks the execution engine; results are identical
//! either way, only the wall-clock time differs. `--scheduler
//! kendo|chunk[:SIZE[:COST]]|dc-batch` (or `DETLOCK_SCHEDULER`) picks the
//! deterministic arbitration policy; different policies legitimately
//! produce different (each internally deterministic) lock orders. `--mode
//! kendo` with no explicit `--scheduler` implies `--scheduler chunk`,
//! preserving the historical Table II spelling.

use detlock_passes::cost::CostModel;
use detlock_passes::pipeline::{instrument_with, CompileOpts, OptConfig, OptLevel};
use detlock_passes::plan::Placement;
use detlock_passes::{render_pass_table, PassPipeline};
use detlock_vm::machine::{run, ExecMode, Jitter, MachineConfig, ThreadSpec};
use detlock_vm::{Backend, Sched};

struct Options {
    input: String,
    opt: OptLevel,
    placement: Placement,
    emit: String,
    run_entry: Option<String>,
    threads: usize,
    mode: ExecMode,
    args: Vec<String>,
    seed: u64,
    estimates: Option<String>,
    print_passes: bool,
    pass_stats: bool,
    compile: CompileOpts,
    scheduler_set: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: dlc <input.dir> [--opt none|o1|o2|o3|o4|all] [--placement start|end]\n\
         \x20          [--emit text|dot|none] [--estimates FILE]\n\
         \x20          [--print-passes] [--pass-stats] [--compile-threads N]\n\
         \x20          [--backend interp|threaded]\n\
         \x20          [--scheduler kendo|chunk[:SIZE[:COST]]|dc-batch]\n\
         \x20          [--run ENTRY --threads N --mode baseline|clocks|det|kendo\n\
         \x20           --args a,b,tid --seed S]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut o = Options {
        input: String::new(),
        opt: OptLevel::All,
        placement: Placement::Start,
        emit: "text".into(),
        run_entry: None,
        threads: 4,
        mode: ExecMode::Det,
        args: vec![],
        seed: 1,
        estimates: None,
        print_passes: false,
        pass_stats: false,
        compile: CompileOpts::from_env().cached(),
        scheduler_set: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--opt" => {
                i += 1;
                o.opt = match argv.get(i).map(String::as_str) {
                    Some("none") => OptLevel::None,
                    Some("o1") => OptLevel::O1,
                    Some("o2") => OptLevel::O2,
                    Some("o3") => OptLevel::O3,
                    Some("o4") => OptLevel::O4,
                    Some("all") => OptLevel::All,
                    _ => usage(),
                };
            }
            "--placement" => {
                i += 1;
                o.placement = match argv.get(i).map(String::as_str) {
                    Some("start") => Placement::Start,
                    Some("end") => Placement::End,
                    _ => usage(),
                };
            }
            "--emit" => {
                i += 1;
                o.emit = argv.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--run" => {
                i += 1;
                o.run_entry = Some(argv.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--threads" => {
                i += 1;
                o.threads = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--mode" => {
                i += 1;
                o.mode = match argv.get(i).map(String::as_str) {
                    Some("baseline") => ExecMode::Baseline,
                    Some("clocks") => ExecMode::ClocksOnly,
                    Some("det") => ExecMode::Det,
                    Some("kendo") => ExecMode::Kendo,
                    _ => usage(),
                };
            }
            "--args" => {
                i += 1;
                o.args = argv
                    .get(i)
                    .map(|v| v.split(',').map(str::to_string).collect())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                o.seed = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--estimates" => {
                i += 1;
                o.estimates = Some(argv.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--backend" => {
                i += 1;
                match argv.get(i).map(|v| Backend::parse(v)) {
                    Some(Ok(b)) => b.set_process_default(),
                    _ => usage(),
                }
            }
            "--scheduler" => {
                i += 1;
                match argv.get(i).map(|v| Sched::parse(v)) {
                    Some(Ok(s)) => {
                        s.set_process_default();
                        o.scheduler_set = true;
                    }
                    _ => usage(),
                }
            }
            "--print-passes" => o.print_passes = true,
            "--pass-stats" => o.pass_stats = true,
            "--compile-threads" => {
                i += 1;
                let n: usize = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                o.compile = CompileOpts::threads(n).cached();
            }
            flag if flag.starts_with("--") => usage(),
            path => {
                if !o.input.is_empty() {
                    usage();
                }
                o.input = path.to_string();
            }
        }
        i += 1;
    }
    if o.input.is_empty() {
        usage();
    }
    // `--mode kendo` historically meant "Kendo with chunked clocks"; keep
    // that spelling working when no scheduler was named explicitly.
    if matches!(o.mode, ExecMode::Kendo) && !o.scheduler_set {
        Sched::Chunk(Default::default()).set_process_default();
    }
    o
}

fn main() {
    let o = parse_options();
    if o.print_passes {
        // Describe the pipeline the flags lower to, without compiling.
        let pipeline = PassPipeline::from_config(&OptConfig::only(o.opt), o.placement);
        for line in pipeline.describe() {
            println!("{line}");
        }
        return;
    }
    let text = std::fs::read_to_string(&o.input).unwrap_or_else(|e| {
        eprintln!("dlc: cannot read {}: {e}", o.input);
        std::process::exit(1);
    });
    let module = detlock_ir::parse::parse_module(&text).unwrap_or_else(|e| {
        eprintln!("dlc: {}: {e}", o.input);
        std::process::exit(1);
    });
    if let Err(errors) = detlock_ir::verify::verify_module(&module) {
        for e in errors {
            eprintln!("dlc: verify: {e}");
        }
        std::process::exit(1);
    }

    let mut cost = CostModel::default();
    if let Some(path) = &o.estimates {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("dlc: cannot read {path}: {e}");
            std::process::exit(1);
        });
        if let Err(e) = cost.merge_estimate_file(&text) {
            eprintln!("dlc: {path}: {e}");
            std::process::exit(1);
        }
    }

    // Entry functions are excluded from Function Clocking.
    let entries: Vec<detlock_ir::FuncId> = match &o.run_entry {
        Some(name) => {
            let id = module.func_by_name(name).unwrap_or_else(|| {
                eprintln!("dlc: no function named `{name}`");
                std::process::exit(1);
            });
            vec![id]
        }
        None => vec![],
    };

    let out = instrument_with(
        &module,
        &cost,
        &OptConfig::only(o.opt),
        o.placement,
        &entries,
        o.compile,
    );
    eprintln!(
        "dlc: {} functions, {} clockable, {} ticks inserted ({} blocks of {})",
        out.stats.functions,
        out.stats.clockable_functions,
        out.stats.ticks_inserted,
        out.stats.blocks_with_tick,
        out.stats.blocks
    );
    if o.pass_stats {
        eprint!("{}", render_pass_table(&out.stats.per_pass));
        eprintln!(
            "dlc: analysis cache: {} hits / {} misses",
            out.stats.analysis_cache_hits, out.stats.analysis_cache_misses
        );
        eprintln!(
            "dlc: plan cache: {} hits / {} misses / {} evictions",
            out.stats.plan_cache_hits, out.stats.plan_cache_misses, out.stats.plan_cache_evictions
        );
    }

    match o.emit.as_str() {
        "text" => {
            for (fid, f) in out.module.iter_funcs() {
                let plan = &out.plan.funcs[fid.index()];
                print!(
                    "{}",
                    detlock_ir::dot::function_to_text(f, |b| Some(plan.block_clock[b.index()]))
                );
            }
        }
        "dot" => {
            for (fid, f) in out.module.iter_funcs() {
                let plan = &out.plan.funcs[fid.index()];
                print!(
                    "{}",
                    detlock_ir::dot::function_to_dot(f, |b| Some(plan.block_clock[b.index()]))
                );
            }
        }
        "none" => {}
        other => {
            eprintln!("dlc: unknown --emit `{other}`");
            std::process::exit(2);
        }
    }

    let Some(entry_name) = o.run_entry else {
        return;
    };
    let entry = out.module.func_by_name(&entry_name).unwrap();
    let params = out.module.func(entry).params as usize;
    let threads: Vec<ThreadSpec> = (0..o.threads)
        .map(|t| {
            let mut args: Vec<i64> = o
                .args
                .iter()
                .map(|a| {
                    if a == "tid" {
                        t as i64
                    } else {
                        a.parse().unwrap_or_else(|_| {
                            eprintln!("dlc: bad --args value `{a}`");
                            std::process::exit(2);
                        })
                    }
                })
                .collect();
            args.resize(params, 0);
            ThreadSpec { func: entry, args }
        })
        .collect();

    let (metrics, hit) = run(
        &out.module,
        &cost,
        &threads,
        MachineConfig {
            mode: o.mode,
            jitter: Jitter::default().with_seed(o.seed),
            ..MachineConfig::default()
        },
    );
    if hit {
        eprintln!("dlc: run hit the cycle limit (deadlock or runaway loop?)");
        std::process::exit(1);
    }
    println!(
        "\nrun: {} cycles ({:.3} simulated ms at {:.2} GHz)",
        metrics.cycles,
        metrics.seconds() * 1e3,
        metrics.ghz
    );
    println!(
        "     {} instructions, {} lock acquisitions ({:.0} locks/sec), {} wait cycles",
        metrics.instructions(),
        metrics.lock_acquires(),
        metrics.locks_per_sec(),
        metrics.wait_cycles()
    );
    println!("     lock-order hash {:#018x}", metrics.lock_order_hash);
    for (t, m) in metrics.per_thread.iter().enumerate() {
        println!(
            "     thread {t}: {} insts, final clock {}, {} acquires, {} stores",
            m.instructions, m.final_clock, m.lock_acquires, m.retired_stores
        );
    }
}
