//! `detsan`: a happens-before sanitizer woven into the VM.
//!
//! The static lockset analysis in `detlock-analyze` over-approximates: a
//! `may-race` finding names an access the analysis could not prove
//! protected, not an access that is actually unordered. This module is the
//! dynamic other half — a FastTrack-style vector-clock detector (see
//! PAPERS.md: Flanagan & Freund's FastTrack; Entezari's comparative
//! analysis motivates vector clocks over pure lockset for precision)
//! maintained by [`crate::machine::Machine`] on every `Load` / `Store` /
//! lock acquire / lock release / barrier release when
//! [`crate::machine::MachineConfig::sanitize`] is set.
//!
//! # Schedule-invariance
//!
//! The happens-before relation of a run is a function of the observed
//! *synchronization order* only; under [`crate::machine::ExecMode::Det`]
//! that order is deterministic, and any physical interleaving the
//! simulator produces is a linearization of it. The detector keeps, per
//! memory word, the last access per `(thread, static site, read/write)`
//! stamped with the accessor's own clock component, and flags a new access
//! `X` by thread `u` against an entry by thread `t` when
//! `VC_X[t] < entry.clock` — i.e. the entry is not in `X`'s happens-before
//! past. Because every conflicting same-word pair is compared and the
//! comparison depends only on clocks (not on which access physically
//! happened first), the *set* of flagged `(word, site, site)` pairs equals
//! the full set of HB-unordered conflicting pairs, independent of the
//! jitter seed. Canonical reports are therefore byte-identical across
//! seeds — the property `tests/runtime_determinism.rs` checks. (The usual
//! weak-determinism caveat applies: if control flow branches on racy data
//! the executed sites themselves can differ between schedules.)
//!
//! # Minimal schedule log
//!
//! Following "Efficient Deterministic Replay Using Complete Race
//! Detection" (Guo et al., PAPERS.md), a complete race detector is exactly
//! the machinery that shrinks a replay log: every release→acquire edge is
//! already reproduced by the deterministic arbiter, so only the ordering
//! of *racy* access pairs needs pinning. [`SanitizerReport::minimal_log`]
//! emits one constraint per unordered pair, direction-normalized to the
//! canonical (sorted) order — a normalization that pins a canonical
//! deterministic schedule rather than a recording of the observed run.
//! For a race-free program the log is empty, which is the whole point:
//! this artifact is the foundation ROADMAP item 3's `detdebug` replays.

use detlock_ir::module::Module;
use detlock_shim::json::{Json, ToJson};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A static access site inside the module: `(function, block, inst)`
/// indices, matching the coordinates `detlock-analyze` findings carry.
type Site = (u32, u32, u32);

/// One shadow-memory cell: the last access to a word by a given
/// `(thread, site, kind)`, stamped with the accessor's own clock component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AccessEntry {
    tid: u32,
    site: Site,
    write: bool,
    clock: u64,
}

/// Canonical key for one access half of a race record. Ordered so a pair
/// can be direction-normalized by sorting its two halves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct AccKey {
    tid: u32,
    site: Site,
    write: bool,
}

/// Canonical key for a detected race: a word plus its two access halves in
/// sorted order. The set of these keys is schedule-invariant (module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct RaceKey {
    word: u64,
    a: AccKey,
    b: AccKey,
}

/// One edge of the runtime lock-order graph: `from` was held while `to`
/// was acquired.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct EdgeData {
    /// Bitmask of threads that traversed the edge.
    tid_mask: u64,
    /// Sample acquisition sites (bounded; the mask covers all threads).
    sites: BTreeSet<Site>,
}

const EDGE_SITE_SAMPLES: usize = 4;

/// The sanitizer state carried by a machine (and its checkpoints).
///
/// Plain data: `Clone` so checkpoint/restore carries it, and every
/// container iterates in a deterministic order so [`Sanitizer::digest`]
/// and the finalized report are reproducible.
#[derive(Debug, Clone)]
pub struct Sanitizer {
    n: usize,
    /// Per-thread vector clocks; `vc[t][t]` starts at 1 so the initial
    /// epoch is distinguishable from "never observed".
    vc: Vec<Vec<u64>>,
    /// Per-lock clocks: the releaser's vector clock at the last release.
    lock_vc: BTreeMap<i64, Vec<u64>>,
    /// Per-thread stack of currently held locks (for order edges).
    held: Vec<Vec<i64>>,
    /// Shadow memory: per touched word, last access per (tid, site, kind).
    shadow: BTreeMap<u64, Vec<AccessEntry>>,
    /// Runtime lock-order graph.
    edges: BTreeMap<(i64, i64), EdgeData>,
    /// Canonical set of HB-unordered conflicting access pairs.
    races: BTreeSet<RaceKey>,
    acquires: u64,
    releases: u64,
    barrier_releases: u64,
}

fn join_into(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

impl Sanitizer {
    /// Fresh state for `n` threads.
    pub fn new(n: usize) -> Sanitizer {
        let mut vc = vec![vec![0u64; n]; n];
        for (t, row) in vc.iter_mut().enumerate() {
            row[t] = 1;
        }
        Sanitizer {
            n,
            vc,
            lock_vc: BTreeMap::new(),
            held: vec![Vec::new(); n],
            shadow: BTreeMap::new(),
            edges: BTreeMap::new(),
            races: BTreeSet::new(),
            acquires: 0,
            releases: 0,
            barrier_releases: 0,
        }
    }

    /// Record a memory access by thread `tid` to `word` at static `site`.
    pub fn access(&mut self, tid: u32, word: usize, write: bool, site: Site) {
        let t = tid as usize;
        let own = self.vc[t][t];
        let vc = &self.vc[t];
        let entries = self.shadow.entry(word as u64).or_default();
        let key = AccKey { tid, site, write };
        let mut fresh: Vec<RaceKey> = Vec::new();
        let mut slot = None;
        for (i, e) in entries.iter().enumerate() {
            if e.tid == tid {
                if e.site == site && e.write == write {
                    slot = Some(i);
                }
                continue;
            }
            if (write || e.write) && vc[e.tid as usize] < e.clock {
                let other = AccKey {
                    tid: e.tid,
                    site: e.site,
                    write: e.write,
                };
                let (a, b) = if other <= key {
                    (other, key)
                } else {
                    (key, other)
                };
                fresh.push(RaceKey {
                    word: word as u64,
                    a,
                    b,
                });
            }
        }
        match slot {
            Some(i) => entries[i].clock = own,
            None => entries.push(AccessEntry {
                tid,
                site,
                write,
                clock: own,
            }),
        }
        self.races.extend(fresh);
    }

    /// Lock acquire by `tid` at `site`: join the lock's release clock into
    /// the thread and record lock-order edges for every lock already held.
    pub fn acquire(&mut self, tid: u32, lock: i64, site: Site) {
        let t = tid as usize;
        self.acquires += 1;
        if let Some(lvc) = self.lock_vc.get(&lock) {
            join_into(&mut self.vc[t], lvc);
        }
        for &h in &self.held[t] {
            if h != lock {
                let e = self.edges.entry((h, lock)).or_default();
                e.tid_mask |= 1u64 << (tid % 64);
                if e.sites.len() < EDGE_SITE_SAMPLES {
                    e.sites.insert(site);
                }
            }
        }
        self.held[t].push(lock);
    }

    /// Lock release by `tid`: publish the thread's clock on the lock, then
    /// advance the thread's own component (FastTrack release rule).
    pub fn release(&mut self, tid: u32, lock: i64) {
        let t = tid as usize;
        self.releases += 1;
        self.lock_vc.insert(lock, self.vc[t].clone());
        self.vc[t][t] += 1;
        if let Some(p) = self.held[t].iter().rposition(|&x| x == lock) {
            self.held[t].remove(p);
        }
    }

    /// Barrier release: every arrival joins to the common supremum, then
    /// advances its own component — all pre-barrier accesses happen-before
    /// all post-barrier accesses.
    pub fn barrier(&mut self, arrivals: &[u32]) {
        self.barrier_releases += 1;
        let mut sup = vec![0u64; self.n];
        for &a in arrivals {
            join_into(&mut sup, &self.vc[a as usize]);
        }
        for &a in arrivals {
            let t = a as usize;
            self.vc[t] = sup.clone();
            self.vc[t][t] += 1;
        }
    }

    /// Deep digest of the sanitizer state, folded into checkpoint digests:
    /// two runs that agree on this value hold identical detector state.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        fold(self.n as u64);
        fold(self.acquires);
        fold(self.releases);
        fold(self.barrier_releases);
        for row in &self.vc {
            for &c in row {
                fold(c);
            }
        }
        for (id, lvc) in &self.lock_vc {
            fold(*id as u64);
            for &c in lvc {
                fold(c);
            }
        }
        for stack in &self.held {
            fold(stack.len() as u64);
            for &l in stack {
                fold(l as u64);
            }
        }
        for (word, entries) in &self.shadow {
            fold(*word);
            fold(entries.len() as u64);
            for e in entries {
                fold(e.tid as u64);
                fold(e.site.0 as u64);
                fold(e.site.1 as u64);
                fold(e.site.2 as u64);
                fold(e.write as u64);
                fold(e.clock);
            }
        }
        for ((a, b), e) in &self.edges {
            fold(*a as u64);
            fold(*b as u64);
            fold(e.tid_mask);
            for s in &e.sites {
                fold(s.0 as u64);
                fold(s.1 as u64);
                fold(s.2 as u64);
            }
        }
        for r in &self.races {
            fold(r.word);
            for k in [r.a, r.b] {
                fold(k.tid as u64);
                fold(k.site.0 as u64);
                fold(k.site.1 as u64);
                fold(k.site.2 as u64);
                fold(k.write as u64);
            }
        }
        h
    }

    fn name_access(module: &Module, k: AccKey) -> DynAccess {
        let func = module
            .functions
            .get(k.site.0 as usize)
            .map(|f| f.name.clone())
            .unwrap_or_else(|| format!("@f{}", k.site.0));
        DynAccess {
            tid: k.tid,
            func,
            block: k.site.1,
            inst: k.site.2,
            write: k.write,
        }
    }

    /// Strongly connected components of the lock-order graph with more
    /// than one node (or a self-loop): each is a deadlock-prone cycle.
    fn lock_cycles(&self, module: &Module) -> Vec<LockCycle> {
        let nodes: BTreeSet<i64> = self.edges.keys().flat_map(|&(a, b)| [a, b]).collect();
        let reach = |from: i64| -> BTreeSet<i64> {
            let mut seen = BTreeSet::new();
            let mut stack = vec![from];
            while let Some(x) = stack.pop() {
                for (&(a, b), _) in self.edges.range((x, i64::MIN)..=(x, i64::MAX)) {
                    debug_assert_eq!(a, x);
                    if seen.insert(b) {
                        stack.push(b);
                    }
                }
            }
            seen
        };
        let reachable: BTreeMap<i64, BTreeSet<i64>> =
            nodes.iter().map(|&a| (a, reach(a))).collect();
        let mut cycles = Vec::new();
        let mut assigned: BTreeSet<i64> = BTreeSet::new();
        for &a in &nodes {
            if assigned.contains(&a) {
                continue;
            }
            let scc: Vec<i64> = reachable[&a]
                .iter()
                .copied()
                .filter(|&b| reachable[&b].contains(&a))
                .collect();
            // A node alone in its SCC cycles only via a self-loop, which
            // `acquire` never records (h != lock); skip it.
            if scc.len() < 2 {
                continue;
            }
            assigned.extend(scc.iter().copied());
            let in_scc: BTreeSet<i64> = scc.iter().copied().collect();
            let edges = self
                .edges
                .iter()
                .filter(|((x, y), _)| in_scc.contains(x) && in_scc.contains(y))
                .map(|(&(from, to), e)| {
                    let site = e.sites.iter().next().copied().unwrap_or((0, 0, 0));
                    LockEdge {
                        from,
                        to,
                        tid_mask: e.tid_mask,
                        func: module
                            .functions
                            .get(site.0 as usize)
                            .map(|f| f.name.clone())
                            .unwrap_or_else(|| format!("@f{}", site.0)),
                        block: site.1,
                        inst: site.2,
                    }
                })
                .collect();
            cycles.push(LockCycle { locks: scc, edges });
        }
        cycles
    }

    /// Finalize into a [`SanitizerReport`], resolving function names
    /// against `module` (the module the machine executed).
    pub fn finalize(&self, module: &Module) -> SanitizerReport {
        let races: Vec<DynRace> = self
            .races
            .iter()
            .map(|r| DynRace {
                word: r.word as usize,
                a: Self::name_access(module, r.a),
                b: Self::name_access(module, r.b),
            })
            .collect();
        // Per-site stats for triage: which static sites were observed at
        // all, by which threads, and whether a conflicting same-word
        // access by another thread existed (ordered or not).
        let mut sites: BTreeMap<(AccKey, bool), SiteStat> = BTreeMap::new();
        for entries in self.shadow.values() {
            for e in entries {
                let conflicted = entries
                    .iter()
                    .any(|o| o.tid != e.tid && (e.write || o.write));
                let key = AccKey {
                    tid: 0,
                    site: e.site,
                    write: e.write,
                };
                let stat = sites.entry((key, e.write)).or_insert_with(|| SiteStat {
                    func: module
                        .functions
                        .get(e.site.0 as usize)
                        .map(|f| f.name.clone())
                        .unwrap_or_else(|| format!("@f{}", e.site.0)),
                    block: e.site.1,
                    inst: e.site.2,
                    write: e.write,
                    tid_mask: 0,
                    contended: false,
                });
                stat.tid_mask |= 1u64 << (e.tid % 64);
                stat.contended |= conflicted;
            }
        }
        SanitizerReport {
            threads: self.n,
            races,
            lock_cycles: self.lock_cycles(module),
            sites: sites.into_values().collect(),
            acquires: self.acquires,
            releases: self.releases,
            barrier_releases: self.barrier_releases,
        }
    }
}

/// One half of a dynamic race: who accessed, where in the program, how.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DynAccess {
    /// Thread id of the accessor.
    pub tid: u32,
    /// Function name (resolved from the executed module).
    pub func: String,
    /// Basic-block index within the function.
    pub block: u32,
    /// Instruction index within the block.
    pub inst: u32,
    /// True for a store (or builtin write), false for a load.
    pub write: bool,
}

impl DynAccess {
    fn kind(&self) -> &'static str {
        if self.write {
            "write"
        } else {
            "read"
        }
    }
}

impl fmt::Display for DynAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}/bb{}#{} by tid {}",
            self.kind(),
            self.func,
            self.block,
            self.inst,
            self.tid
        )
    }
}

/// A precise dynamic race: two conflicting accesses to one word with no
/// happens-before edge between them, named down to the instruction.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DynRace {
    /// The shared-memory word both sides touched.
    pub word: usize,
    /// The canonically-first access (sorted order, not temporal order).
    pub a: DynAccess,
    /// The canonically-second access.
    pub b: DynAccess,
}

impl fmt::Display for DynRace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "word {}: {} is unordered with {}",
            self.word, self.a, self.b
        )
    }
}

impl DynRace {
    /// Does either side of this race sit at the given static coordinates?
    pub fn touches(&self, func: &str, block: u32, inst: u32) -> bool {
        [&self.a, &self.b]
            .iter()
            .any(|x| x.func == func && x.block == block && x.inst == inst)
    }
}

impl ToJson for DynRace {
    fn to_json(&self) -> Json {
        let acc = |x: &DynAccess| {
            Json::obj([
                ("tid", Json::Int(x.tid as i64)),
                ("func", Json::Str(x.func.clone())),
                ("block", Json::Int(x.block as i64)),
                ("inst", Json::Int(x.inst as i64)),
                ("kind", Json::Str(x.kind().to_string())),
            ])
        };
        Json::obj([
            ("word", Json::Int(self.word as i64)),
            ("a", acc(&self.a)),
            ("b", acc(&self.b)),
        ])
    }
}

/// One edge of a reported lock cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock already held.
    pub from: i64,
    /// Lock acquired while holding `from`.
    pub to: i64,
    /// Bitmask of threads that traversed the edge.
    pub tid_mask: u64,
    /// Function name of a sample acquisition site.
    pub func: String,
    /// Block index of the sample site.
    pub block: u32,
    /// Instruction index of the sample site.
    pub inst: u32,
}

/// A deadlock-prone acquisition cycle in the runtime lock-order graph:
/// a strongly connected component of held→acquired edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockCycle {
    /// The locks in the cycle, sorted.
    pub locks: Vec<i64>,
    /// The edges among them, sorted by (from, to).
    pub edges: Vec<LockEdge>,
}

impl fmt::Display for LockCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let locks: Vec<String> = self.locks.iter().map(|l| l.to_string()).collect();
        write!(f, "locks {{{}}}:", locks.join(", "))?;
        for (i, e) in self.edges.iter().enumerate() {
            let sep = if i == 0 { " " } else { ", " };
            write!(
                f,
                "{sep}{}->{} at {}/bb{}#{} (tids 0x{:x})",
                e.from, e.to, e.func, e.block, e.inst, e.tid_mask
            )?;
        }
        Ok(())
    }
}

impl ToJson for LockCycle {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "locks",
                Json::Arr(self.locks.iter().map(|&l| Json::Int(l)).collect()),
            ),
            (
                "edges",
                Json::Arr(
                    self.edges
                        .iter()
                        .map(|e| {
                            Json::obj([
                                ("from", Json::Int(e.from)),
                                ("to", Json::Int(e.to)),
                                ("tid_mask", Json::Int(e.tid_mask as i64)),
                                ("func", Json::Str(e.func.clone())),
                                ("block", Json::Int(e.block as i64)),
                                ("inst", Json::Int(e.inst as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Per-static-site observation stats, consumed by the triage layer to
/// separate `unobserved` from `refuted-by-HB`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteStat {
    /// Function name.
    pub func: String,
    /// Block index.
    pub block: u32,
    /// Instruction index.
    pub inst: u32,
    /// True for store sites.
    pub write: bool,
    /// Bitmask of threads observed executing the site.
    pub tid_mask: u64,
    /// True when some word this site touched was also accessed by another
    /// thread with at least one write in the pair — a conflict existed,
    /// ordered or not.
    pub contended: bool,
}

/// The finalized sanitizer output for one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SanitizerReport {
    /// Thread count of the run.
    pub threads: usize,
    /// All HB-unordered conflicting access pairs, canonically sorted.
    pub races: Vec<DynRace>,
    /// Deadlock-prone acquisition cycles in the lock-order graph.
    pub lock_cycles: Vec<LockCycle>,
    /// Per-site observation stats (sorted), for triage.
    pub sites: Vec<SiteStat>,
    /// Total lock acquisitions observed (the full replay log's length —
    /// what the minimal log compresses away).
    pub acquires: u64,
    /// Total lock releases observed.
    pub releases: u64,
    /// Total barrier releases observed.
    pub barrier_releases: u64,
}

impl SanitizerReport {
    /// Merge another run's report into this one (e.g. across jitter
    /// seeds): union of races and cycles, max of counters, OR of site
    /// masks. Used when a sweep runs the same workload under many seeds.
    pub fn merge(&mut self, other: &SanitizerReport) {
        let mut races: BTreeSet<DynRace> = self.races.iter().cloned().collect();
        races.extend(other.races.iter().cloned());
        self.races = races.into_iter().collect();
        for c in &other.lock_cycles {
            if !self.lock_cycles.contains(c) {
                self.lock_cycles.push(c.clone());
            }
        }
        self.lock_cycles.sort_by(|x, y| x.locks.cmp(&y.locks));
        for s in &other.sites {
            match self.sites.iter_mut().find(|m| {
                m.func == s.func && m.block == s.block && m.inst == s.inst && m.write == s.write
            }) {
                Some(m) => {
                    m.tid_mask |= s.tid_mask;
                    m.contended |= s.contended;
                }
                None => self.sites.push(s.clone()),
            }
        }
        self.sites.sort_by(|x, y| {
            (&x.func, x.block, x.inst, x.write).cmp(&(&y.func, y.block, y.inst, y.write))
        });
        self.acquires = self.acquires.max(other.acquires);
        self.releases = self.releases.max(other.releases);
        self.barrier_releases = self.barrier_releases.max(other.barrier_releases);
    }

    /// Stats for the static site at `(func, block, inst)`, any kind.
    pub fn site(&self, func: &str, block: u32, inst: u32) -> Option<&SiteStat> {
        self.sites
            .iter()
            .find(|s| s.func == func && s.block == block && s.inst == inst)
    }

    /// The dynamic races touching the static site, if any.
    pub fn races_at(&self, func: &str, block: u32, inst: u32) -> Vec<&DynRace> {
        self.races
            .iter()
            .filter(|r| r.touches(func, block, inst))
            .collect()
    }

    /// Canonical textual form: byte-identical across jitter seeds for the
    /// same (module, threads, inputs) run in a deterministic mode. Counts
    /// that are schedule-invariant (acquires, barrier releases) are
    /// included; nothing clock- or cycle-valued is.
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "detsan threads={} races={} lock_cycles={} acquires={} releases={} barriers={}\n",
            self.threads,
            self.races.len(),
            self.lock_cycles.len(),
            self.acquires,
            self.releases,
            self.barrier_releases
        ));
        for r in &self.races {
            out.push_str(&format!("race {r}\n"));
        }
        for c in &self.lock_cycles {
            out.push_str(&format!("cycle {c}\n"));
        }
        for s in &self.sites {
            out.push_str(&format!(
                "site {}/bb{}#{} {} tids=0x{:x} contended={}\n",
                s.func,
                s.block,
                s.inst,
                if s.write { "write" } else { "read" },
                s.tid_mask,
                s.contended
            ));
        }
        out
    }

    /// The compressed minimal schedule log (`detsan.log`): one ordering
    /// constraint per racy access pair, direction-normalized to canonical
    /// order. Everything else is reproduced by the deterministic arbiter,
    /// so a replayer needs only these lines (empty for race-free runs).
    pub fn minimal_log(&self) -> String {
        let mut out = String::new();
        out.push_str("# detsan minimal schedule log v1\n");
        out.push_str(&format!(
            "# constraints={} (full sync log would hold {} acquire entries)\n",
            self.races.len(),
            self.acquires
        ));
        for r in &self.races {
            out.push_str(&format!(
                "constraint word={} first=t{}@{}/bb{}#{}:{} second=t{}@{}/bb{}#{}:{}\n",
                r.word,
                r.a.tid,
                r.a.func,
                r.a.block,
                r.a.inst,
                if r.a.write { "W" } else { "R" },
                r.b.tid,
                r.b.func,
                r.b.block,
                r.b.inst,
                if r.b.write { "W" } else { "R" },
            ));
        }
        out
    }
}

impl ToJson for SanitizerReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("threads", Json::Int(self.threads as i64)),
            (
                "races",
                Json::Arr(self.races.iter().map(|r| r.to_json()).collect()),
            ),
            (
                "lock_cycles",
                Json::Arr(self.lock_cycles.iter().map(|c| c.to_json()).collect()),
            ),
            ("acquires", Json::Int(self.acquires as i64)),
            ("releases", Json::Int(self.releases as i64)),
            ("barrier_releases", Json::Int(self.barrier_releases as i64)),
            ("minimal_log", Json::Str(self.minimal_log())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module_stub() -> Module {
        Module::new()
    }

    #[test]
    fn unsynchronized_conflict_is_flagged_once_per_site_pair() {
        let mut s = Sanitizer::new(2);
        // Thread 0 writes word 5; thread 1 writes it too, no sync between.
        for _ in 0..3 {
            s.access(0, 5, true, (0, 1, 2));
            s.access(1, 5, true, (0, 1, 2));
        }
        let r = s.finalize(&module_stub());
        assert_eq!(r.races.len(), 1, "dedup to one canonical pair");
        assert_eq!(r.races[0].word, 5);
        assert_ne!(r.races[0].a.tid, r.races[0].b.tid);
    }

    #[test]
    fn release_acquire_orders_the_conflict() {
        let mut s = Sanitizer::new(2);
        s.acquire(0, 9, (0, 0, 0));
        s.access(0, 5, true, (0, 1, 2));
        s.release(0, 9);
        s.acquire(1, 9, (0, 0, 0));
        s.access(1, 5, true, (0, 1, 2));
        s.release(1, 9);
        let r = s.finalize(&module_stub());
        assert!(r.races.is_empty(), "lock ordering suppresses the pair");
        let stat = r.sites.first().expect("site observed");
        assert!(stat.contended, "conflict existed even though ordered");
    }

    #[test]
    fn read_read_sharing_is_not_a_race() {
        let mut s = Sanitizer::new(2);
        s.access(0, 7, false, (0, 0, 0));
        s.access(1, 7, false, (0, 0, 1));
        assert!(s.finalize(&module_stub()).races.is_empty());
    }

    #[test]
    fn barrier_orders_phases() {
        let mut s = Sanitizer::new(2);
        s.access(0, 3, true, (0, 0, 0));
        s.barrier(&[0, 1]);
        s.access(1, 3, true, (0, 0, 1));
        assert!(s.finalize(&module_stub()).races.is_empty());
    }

    #[test]
    fn opposite_order_acquisition_forms_a_cycle() {
        let mut s = Sanitizer::new(2);
        s.acquire(0, 2, (0, 0, 0));
        s.acquire(0, 3, (0, 0, 1));
        s.release(0, 3);
        s.release(0, 2);
        s.acquire(1, 3, (0, 0, 2));
        s.acquire(1, 2, (0, 0, 3));
        s.release(1, 2);
        s.release(1, 3);
        let r = s.finalize(&module_stub());
        assert_eq!(r.lock_cycles.len(), 1);
        assert_eq!(r.lock_cycles[0].locks, vec![2, 3]);
    }

    #[test]
    fn digest_tracks_state() {
        let mut a = Sanitizer::new(2);
        let mut b = Sanitizer::new(2);
        assert_eq!(a.digest(), b.digest());
        a.access(0, 1, true, (0, 0, 0));
        assert_ne!(a.digest(), b.digest());
        b.access(0, 1, true, (0, 0, 0));
        assert_eq!(a.digest(), b.digest());
    }
}
