//! Executable semantics for builtin functions.
//!
//! The values only need to be pure and deterministic — workloads use them
//! for data-dependent control flow and to model the instruction mix of the
//! SPLASH-2 kernels, not for numerical accuracy.

/// Integer square root (floor).
pub fn isqrt(x: i64) -> i64 {
    if x <= 0 {
        return 0;
    }
    let mut r = (x as f64).sqrt() as i64;
    // Correct the float estimate.
    while r > 0 && r * r > x {
        r -= 1;
    }
    while (r + 1) * (r + 1) <= x {
        r += 1;
    }
    r
}

/// Fixed-point sine-like function: odd, bounded, period 1024.
pub fn fixed_sin(x: i64) -> i64 {
    let t = x.rem_euclid(1024);
    // Triangle wave in [-256, 256].
    if t < 256 {
        t
    } else if t < 768 {
        512 - t
    } else {
        t - 1024
    }
}

/// Fixed-point cosine-like function (phase-shifted sine).
pub fn fixed_cos(x: i64) -> i64 {
    fixed_sin(x.wrapping_add(256))
}

/// Bounded exponential-like growth: `min(2^(x/8), 2^32)` scaled.
pub fn fixed_exp(x: i64) -> i64 {
    let e = (x.clamp(0, 256) / 8) as u32;
    1i64 << e.min(32)
}

/// Integer log2 (floor); zero and negatives map to 0.
pub fn ilog2(x: i64) -> i64 {
    if x <= 0 {
        0
    } else {
        63 - x.leading_zeros() as i64
    }
}

/// One xorshift64 step — the `rand()` builtin. Maps 0 to a fixed nonzero
/// seed so chains never get stuck.
pub fn xorshift64(x: i64) -> i64 {
    let mut v = x as u64;
    if v == 0 {
        v = 0x9e3779b97f4a7c15;
    }
    v ^= v << 13;
    v ^= v >> 7;
    v ^= v << 17;
    v as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isqrt_exact() {
        assert_eq!(isqrt(0), 0);
        assert_eq!(isqrt(1), 1);
        assert_eq!(isqrt(15), 3);
        assert_eq!(isqrt(16), 4);
        assert_eq!(isqrt(17), 4);
        assert_eq!(isqrt(-5), 0);
        assert_eq!(isqrt(1 << 40), 1 << 20);
    }

    #[test]
    fn sin_cos_bounded_and_periodic() {
        for x in -3000..3000 {
            let s = fixed_sin(x);
            assert!((-256..=256).contains(&s), "sin({x}) = {s}");
            assert_eq!(fixed_sin(x), fixed_sin(x + 1024));
        }
        assert_eq!(fixed_cos(0), fixed_sin(256));
    }

    #[test]
    fn exp_monotone_bounded() {
        assert_eq!(fixed_exp(0), 1);
        assert!(fixed_exp(64) > fixed_exp(8));
        assert_eq!(fixed_exp(10_000), fixed_exp(256));
        assert_eq!(fixed_exp(-5), 1);
    }

    #[test]
    fn ilog2_values() {
        assert_eq!(ilog2(1), 0);
        assert_eq!(ilog2(2), 1);
        assert_eq!(ilog2(1023), 9);
        assert_eq!(ilog2(1024), 10);
        assert_eq!(ilog2(0), 0);
        assert_eq!(ilog2(-8), 0);
    }

    #[test]
    fn xorshift_deterministic_nonzero() {
        let a = xorshift64(12345);
        assert_eq!(a, xorshift64(12345));
        assert_ne!(a, 12345);
        assert_ne!(xorshift64(0), 0);
        // A short chain should not cycle immediately.
        let mut v = 1;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            v = xorshift64(v);
            assert!(seen.insert(v), "cycle too short");
        }
    }
}
