//! The cycle-level multicore simulator.
//!
//! Each thread is pinned to its own core and issues one instruction at a
//! time; an instruction occupies the core for its cost-model cycle count
//! (plus seeded OS-noise jitter). Synchronization intrinsics route through a
//! lock table and barrier table whose arbitration depends on the execution
//! mode:
//!
//! * [`ExecMode::Baseline`] — tick instructions are skipped at zero cost
//!   (the uninstrumented binary); locks are granted first-come-first-served,
//!   so the acquisition order varies with the jitter seed. This run defines
//!   "Original Exec Time" in Table I.
//! * [`ExecMode::ClocksOnly`] — ticks execute (and cost cycles) but locks
//!   stay FCFS: measures pure instrumentation overhead (Table I, "After
//!   Inserting Clocks").
//! * [`ExecMode::Det`] — ticks execute and every synchronization operation
//!   is a *deterministic event* performed only when the thread's logical
//!   clock is the global minimum (ties by thread id), following Kendo's
//!   algorithm as adopted by DetLock: a blocked acquirer deterministically
//!   bumps its clock and retries; a releaser stamps the lock with its
//!   release clock; an acquire succeeds only when the lock is free *and*
//!   logically released in the acquirer's past (Table I, "After Inserting
//!   Clocks and Performing Deterministic Execution").
//! * [`ExecMode::Kendo`] — deterministic arbitration over an
//!   *uninstrumented* binary: ticks are skipped, so the logical clocks are
//!   whatever the scheduler supplies. Paired with [`Sched::Chunk`]
//!   (simulated retired-store hardware counters that only update every
//!   `chunk_size` stores, costing `interrupt_cost` cycles per overflow
//!   interrupt) this is the paper's Table II comparison baseline.
//!
//! Deterministic modes delegate *who may synchronize this round* to a
//! pluggable [`crate::sched::DetScheduler`] policy selected by
//! [`MachineConfig::scheduler`] — see [`crate::sched`] for the three
//! shipped policies and the observation contract.
//!
//! # Architecture: determinism core vs execution backend
//!
//! The machine is split in two. [`DetCore`] owns everything that makes a
//! run deterministic and measurable — thread states, logical clocks, the
//! min-`(clock, tid)` arbiter, lock/barrier tables, the trace hasher,
//! checkpoints, and the sanitizer hooks. How the *next instruction of a
//! ready thread* is fetched, applied, and charged is delegated to an
//! [`ExecBackend`]: either the tree-walking interpreter in this module (the
//! oracle) or the threaded-code engine in [`crate::lower`] that runs a flat
//! pre-decoded program. Both backends drive the identical core, charge the
//! identical costs in the identical order (so the jitter RNG draws agree),
//! and report the identical `(func, block, ip)` sites to the sanitizer —
//! which is what makes cross-backend trace hashes, receipts, metrics,
//! sanitizer reports, and even checkpoints byte-compatible.

use crate::backend::Backend;
use crate::builtins;
use crate::metrics::{OrderHasher, RunMetrics, ThreadMetrics};
use crate::sanitizer::{Sanitizer, SanitizerReport};
use crate::sched::{ChunkParams, Decision, DetScheduler, Phase, Sched, SchedImpl, ThreadView};
use detlock_ir::inst::{Inst, Operand, Terminator};
use detlock_ir::module::Module;
use detlock_ir::types::{BlockId, FuncId, Reg};
use detlock_passes::cost::CostModel;
use detlock_shim::rng::SmallRng;
use std::collections::HashMap;

/// CoreDet-style bulk-synchronous parameters (paper §II): execution
/// proceeds in fixed quanta; threads that exhaust their quantum or reach a
/// synchronization operation wait for the round barrier; a commit phase
/// (publishing the round's store buffers) stalls everyone, then pending
/// synchronization operations run serially in thread-id order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BulkSyncParams {
    /// Cycles each thread may execute per round.
    pub quantum: u64,
    /// Fixed commit-phase cost per round.
    pub commit_base: u64,
    /// Additional commit cost per store executed in the round.
    pub commit_per_store: u64,
}

impl Default for BulkSyncParams {
    fn default() -> Self {
        BulkSyncParams {
            quantum: 2000,
            commit_base: 300,
            commit_per_store: 2,
        }
    }
}

/// Deprecation alias: the Kendo-simulation knobs became [`ChunkSched`]
/// configuration ([`Sched::Chunk`]) when arbitration moved behind the
/// [`crate::sched::DetScheduler`] trait. Existing spellings — including
/// `KendoParams { chunk_size, .. }` construction — keep compiling.
///
/// [`ChunkSched`]: crate::sched::ChunkSched
pub type KendoParams = ChunkParams;

/// Execution mode (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecMode {
    /// Uninstrumented, nondeterministic locks.
    Baseline,
    /// Instrumented, nondeterministic locks.
    ClocksOnly,
    /// Instrumented, deterministic (DetLock).
    Det,
    /// Uninstrumented, deterministic: ticks are skipped, so logical
    /// clocks advance only through the scheduler (pair with
    /// [`Sched::Chunk`] for the paper's Table II simulated-Kendo
    /// baseline).
    Kendo,
    /// Uninstrumented; lock grants forced to follow a recorded log
    /// (see [`crate::replay`]). Ticks are skipped and no clock arbitration
    /// runs — determinism comes entirely from the log.
    Replay,
    /// Uninstrumented; CoreDet-style deterministic rounds (see
    /// [`BulkSyncParams`]). No logical clocks: determinism comes from the
    /// quantum barrier and the serial sync phase.
    BulkSync(BulkSyncParams),
}

impl ExecMode {
    pub(crate) fn executes_ticks(self) -> bool {
        matches!(self, ExecMode::ClocksOnly | ExecMode::Det)
    }

    fn deterministic(self) -> bool {
        matches!(self, ExecMode::Det | ExecMode::Kendo)
    }

    fn replayed(self) -> bool {
        matches!(self, ExecMode::Replay)
    }

    pub(crate) fn bulk_sync(self) -> Option<BulkSyncParams> {
        match self {
            ExecMode::BulkSync(p) => Some(p),
            _ => None,
        }
    }
}

/// Seeded OS-noise model: with probability `prob_num/prob_den` an
/// instruction takes `1..=max_extra` extra cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Jitter {
    /// RNG seed (also perturbs baseline lock-grant rotation).
    pub seed: u64,
    /// Jitter probability numerator.
    pub prob_num: u32,
    /// Jitter probability denominator (0 disables jitter).
    pub prob_den: u32,
    /// Maximum extra cycles per jittered instruction.
    pub max_extra: u64,
}

impl Default for Jitter {
    fn default() -> Self {
        Jitter {
            seed: 1,
            prob_num: 1,
            prob_den: 64,
            max_extra: 3,
        }
    }
}

impl Jitter {
    /// A jitter config with a different seed (for determinism tests).
    pub fn with_seed(self, seed: u64) -> Jitter {
        Jitter { seed, ..self }
    }
}

/// One thread to run: an entry function and its arguments.
#[derive(Debug, Clone)]
pub struct ThreadSpec {
    /// Entry function.
    pub func: FuncId,
    /// Arguments placed in the entry function's parameter registers.
    pub args: Vec<i64>,
}

/// Machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Execution mode.
    pub mode: ExecMode,
    /// Words of shared memory.
    pub mem_words: usize,
    /// OS-noise model.
    pub jitter: Jitter,
    /// Safety stop: the run fails (`hit_cycle_limit`) past this many cycles.
    pub max_cycles: u64,
    /// Simulated core frequency (paper testbed: 2.66 GHz).
    pub ghz: f64,
    /// How many acquisition events to keep verbatim (hash covers all).
    pub lock_order_limit: usize,
    /// Protocol cost charged per deterministic lock acquisition in `Det` /
    /// `Kendo` modes: the arbitration rounds themselves are not free on
    /// real hardware (each turn check reads every other thread's clock
    /// cache line; the acquire publishes with fences — Kendo reports
    /// hundreds of cycles per deterministic lock operation). Baseline
    /// modes charge only the raw `sync` cost.
    pub det_event_cost: u64,
    /// The grant log consulted in [`ExecMode::Replay`] (set by
    /// [`crate::replay::replay`]).
    pub replay_log: std::sync::Arc<Vec<(i64, u32)>>,
    /// Run the `detsan` happens-before sanitizer (see [`crate::sanitizer`])
    /// alongside execution. Off by default: the only cost of the disabled
    /// path is one pointer-null check per memory/sync operation, which the
    /// perf gate holds to zero measurable overhead.
    pub sanitize: bool,
    /// Which execution engine runs instructions (see [`crate::backend`]).
    /// Defaults to [`Backend::resolve`] — a `--backend` flag or the
    /// `DETLOCK_BACKEND` env var reroutes every default-constructed config
    /// in the process. Deliberately *excluded* from the checkpoint
    /// fingerprint: both backends execute bit-identically, so a checkpoint
    /// taken under one may be resumed under the other.
    pub backend: Backend,
    /// Which deterministic arbitration policy runs in `Det` / `Kendo`
    /// modes (see [`crate::sched`]). Defaults to [`Sched::resolve`] — a
    /// `--scheduler` flag or the `DETLOCK_SCHEDULER` env var reroutes
    /// every default-constructed config. Unlike the backend, the
    /// scheduler *is* folded into the checkpoint fingerprint: policies
    /// produce genuinely different schedules, so resuming under a
    /// different one is refused (see [`ResumeError::SchedulerMismatch`]).
    pub scheduler: Sched,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            mode: ExecMode::Baseline,
            mem_words: 1 << 16,
            jitter: Jitter::default(),
            max_cycles: 20_000_000_000,
            ghz: 2.66,
            lock_order_limit: 100_000,
            det_event_cost: 120,
            replay_log: std::sync::Arc::new(Vec::new()),
            sanitize: false,
            backend: Backend::resolve(),
            scheduler: Sched::resolve(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Status {
    Ready,
    AcquiringLock(i64),
    AcquiringBarrier(u32),
    InBarrier(u32),
    /// Bulk-sync mode: quantum exhausted; waiting for the round barrier.
    QuantumDone,
    ExitWait,
    Done,
}

/// A call-stack frame. `Copy` so the hot loop reads it off the stack
/// without cloning a heap structure per step.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Frame {
    pub(crate) func: FuncId,
    pub(crate) block: BlockId,
    pub(crate) ip: usize,
    pub(crate) reg_base: usize,
    pub(crate) ret_dst: Option<Reg>,
}

#[derive(Clone)]
pub(crate) struct Thread {
    pub(crate) status: Status,
    pub(crate) frames: Vec<Frame>,
    pub(crate) regs: Vec<i64>,
    pub(crate) clock: u64,
    pub(crate) pending: u64,
    /// Bulk-sync: cycles left in the current quantum.
    pub(crate) quantum_left: u64,
    /// Bulk-sync: stores executed this round (drives the commit cost).
    pub(crate) round_stores: u64,
    pub(crate) rng: SmallRng,
    pub(crate) m: ThreadMetrics,
}

#[derive(Debug, Default, Clone)]
pub(crate) struct LockState {
    pub(crate) held_by: Option<u32>,
    pub(crate) release_clock: Option<u64>,
}

#[derive(Debug, Default, Clone)]
pub(crate) struct BarrierState {
    pub(crate) arrivals: Vec<u32>,
}

/// A deterministic snapshot of a running [`Machine`].
///
/// Captures *all* mutable machine state — per-thread frames, registers,
/// logical clocks, pending acquisitions, jitter-RNG positions, the shared
/// memory image, lock/barrier tables, and the trace-hash prefix — so that
/// [`Machine::resume`] continues the run exactly where the snapshot was
/// taken. Because snapshots are pure reads placed at round boundaries of
/// the min-clock arbiter (see [`Machine::run_with_checkpoints`]),
/// checkpoint placement cannot perturb the schedule: a resumed run
/// produces byte-identical final metrics (and hence receipts) to the
/// uninterrupted run.
///
/// A checkpoint is tied to the (module, config, thread-count) it was taken
/// under via a [`fingerprint`](Checkpoint::fingerprint); `resume` refuses a
/// mismatched fingerprint rather than silently diverging. It is plain data
/// (`Clone + Send`), so a serving layer can hand it to another worker —
/// cross-shard migration is sound exactly when both shards compiled the
/// byte-identical module, which the fingerprint asserts structurally.
/// The execution [`Backend`] is *not* part of the fingerprint: both
/// backends are bit-identical executors of the same module, so a shard may
/// resume an interpreter checkpoint on the threaded engine (and vice
/// versa) — the checkpoint/restore tests pin this down. The scheduling
/// policy is the inverse case: a checkpoint records its [`Sched`] (plus
/// any scheduler-private state) and [`Machine::resume`] refuses a
/// different one with a typed [`ResumeError::SchedulerMismatch`], because
/// two policies continue the run with genuinely different schedules.
#[derive(Clone)]
pub struct Checkpoint {
    fingerprint: u64,
    sched: Sched,
    sched_state: Vec<u64>,
    cycle: u64,
    threads: Vec<Thread>,
    mem: Vec<i64>,
    locks: HashMap<i64, LockState>,
    barriers: HashMap<u32, BarrierState>,
    hasher: OrderHasher,
    lock_order: Vec<(i64, u32)>,
    done_count: usize,
    replay_pos: usize,
    commit_stall: u64,
    /// Sanitizer state at the snapshot (present iff the run sanitizes), so
    /// resume-from-checkpoint reports the same races as run-from-zero.
    san: Option<Box<Sanitizer>>,
}

fn fnv_fold(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

impl Checkpoint {
    /// The cycle at which this snapshot was taken.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Threads that had already finished when the snapshot was taken.
    pub fn done_count(&self) -> usize {
        self.done_count
    }

    /// The trace-hash prefix: the FNV-1a fold over every `(lock, tid)`
    /// acquisition event that happened before the snapshot.
    pub fn trace_hash_prefix(&self) -> u64 {
        self.hasher.value()
    }

    /// The (module, config, thread-count) fingerprint this checkpoint is
    /// valid against.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The scheduling policy the snapshot was taken under — the only
    /// policy it may resume on.
    pub fn scheduler(&self) -> Sched {
        self.sched
    }

    /// Approximate heap footprint in bytes (memory image + registers),
    /// for capacity accounting in serving layers.
    pub fn approx_bytes(&self) -> usize {
        let regs: usize = self.threads.iter().map(|t| t.regs.len()).sum();
        (self.mem.len() + regs) * std::mem::size_of::<i64>()
    }

    /// A deep digest of the snapshot: two runs of the same program that
    /// agree on this value at a given cycle are in *identical* machine
    /// states (same frames, registers, clocks, memory, lock tables, RNG
    /// positions) and will therefore evolve identically. Used by tests to
    /// assert state convergence, not just trace-hash convergence.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        fnv_fold(&mut h, self.fingerprint);
        for w in self.sched.fingerprint_words() {
            fnv_fold(&mut h, w);
        }
        fnv_fold(&mut h, self.sched_state.len() as u64);
        for &w in &self.sched_state {
            fnv_fold(&mut h, w);
        }
        fnv_fold(&mut h, self.cycle);
        fnv_fold(&mut h, self.done_count as u64);
        fnv_fold(&mut h, self.replay_pos as u64);
        fnv_fold(&mut h, self.commit_stall);
        fnv_fold(&mut h, self.hasher.value());
        for &w in &self.mem {
            fnv_fold(&mut h, w as u64);
        }
        for th in &self.threads {
            let (tag, payload) = match th.status {
                Status::Ready => (0u64, 0u64),
                Status::AcquiringLock(id) => (1, id as u64),
                Status::AcquiringBarrier(id) => (2, id as u64),
                Status::InBarrier(id) => (3, id as u64),
                Status::QuantumDone => (4, 0),
                Status::ExitWait => (5, 0),
                Status::Done => (6, 0),
            };
            fnv_fold(&mut h, tag);
            fnv_fold(&mut h, payload);
            fnv_fold(&mut h, th.clock);
            fnv_fold(&mut h, th.pending);
            fnv_fold(&mut h, th.quantum_left);
            fnv_fold(&mut h, th.round_stores);
            for s in th.rng.state() {
                fnv_fold(&mut h, s);
            }
            for &r in &th.regs {
                fnv_fold(&mut h, r as u64);
            }
            for f in &th.frames {
                fnv_fold(&mut h, f.func.index() as u64);
                fnv_fold(&mut h, f.block.index() as u64);
                fnv_fold(&mut h, f.ip as u64);
                fnv_fold(&mut h, f.reg_base as u64);
                fnv_fold(&mut h, f.ret_dst.map(|r| r.index() as u64 + 1).unwrap_or(0));
            }
        }
        let mut lock_ids: Vec<i64> = self.locks.keys().copied().collect();
        lock_ids.sort_unstable();
        for id in lock_ids {
            let st = &self.locks[&id];
            fnv_fold(&mut h, id as u64);
            fnv_fold(&mut h, st.held_by.map(|t| t as u64 + 1).unwrap_or(0));
            fnv_fold(&mut h, st.release_clock.map(|c| c + 1).unwrap_or(0));
        }
        let mut bar_ids: Vec<u32> = self.barriers.keys().copied().collect();
        bar_ids.sort_unstable();
        for id in bar_ids {
            fnv_fold(&mut h, id as u64);
            for &a in &self.barriers[&id].arrivals {
                fnv_fold(&mut h, a as u64);
            }
        }
        match &self.san {
            Some(s) => {
                fnv_fold(&mut h, 1);
                fnv_fold(&mut h, s.digest());
            }
            None => fnv_fold(&mut h, 0),
        }
        h
    }
}

/// Structural fingerprint binding a checkpoint to what it may resume on:
/// the execution mode (with parameters), scheduling policy (with
/// parameters), jitter model, memory geometry, cost-relevant config,
/// thread count, and the module shape. Two shards that compiled the same
/// plan-cache entry agree on all of these. The execution [`Backend`] is
/// deliberately not folded in — backends are bit-identical, so resuming a
/// checkpoint on the other engine is sound (and exercised by the
/// cross-backend checkpoint tests). The scheduler *is* folded in: see
/// [`ResumeError::SchedulerMismatch`].
fn config_fingerprint(cfg: &MachineConfig, module: &Module, n_threads: usize) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let (mode_tag, a, b, c) = match cfg.mode {
        ExecMode::Baseline => (0u64, 0u64, 0u64, 0u64),
        ExecMode::ClocksOnly => (1, 0, 0, 0),
        ExecMode::Det => (2, 0, 0, 0),
        ExecMode::Kendo => (3, 0, 0, 0),
        ExecMode::Replay => (4, 0, 0, 0),
        ExecMode::BulkSync(bp) => (5, bp.quantum, bp.commit_base, bp.commit_per_store),
    };
    for v in [mode_tag, a, b, c] {
        fnv_fold(&mut h, v);
    }
    for v in cfg.scheduler.fingerprint_words() {
        fnv_fold(&mut h, v);
    }
    fnv_fold(&mut h, cfg.jitter.seed);
    fnv_fold(&mut h, cfg.jitter.prob_num as u64);
    fnv_fold(&mut h, cfg.jitter.prob_den as u64);
    fnv_fold(&mut h, cfg.jitter.max_extra);
    fnv_fold(&mut h, cfg.mem_words as u64);
    fnv_fold(&mut h, cfg.det_event_cost);
    fnv_fold(&mut h, cfg.lock_order_limit as u64);
    fnv_fold(&mut h, n_threads as u64);
    fnv_fold(&mut h, cfg.sanitize as u64);
    fnv_fold(&mut h, cfg.replay_log.len() as u64);
    fnv_fold(&mut h, module.functions.len() as u64);
    for f in &module.functions {
        fnv_fold(&mut h, f.blocks.len() as u64);
        fnv_fold(&mut h, f.num_regs as u64);
        let insts: usize = f.blocks.iter().map(|b| b.insts.len()).sum();
        fnv_fold(&mut h, insts as u64);
    }
    h
}

/// Why [`Machine::resume`] refused a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// The checkpoint was taken under a different scheduling policy (or
    /// the same policy with different parameters). Unlike the execution
    /// backend — which is excluded from the fingerprint because both
    /// engines execute the one schedule bit-identically — the scheduler
    /// *defines* the schedule: resuming under another policy would
    /// continue the run with a different lock order than it started with,
    /// silently breaking receipt and trace-hash stability.
    SchedulerMismatch {
        /// The policy the checkpoint was taken under.
        checkpoint: Sched,
        /// The policy the resuming config requested.
        requested: Sched,
    },
    /// The structural fingerprints disagree: different module, config, or
    /// thread count.
    ConfigMismatch {
        /// The checkpoint's fingerprint.
        checkpoint: u64,
        /// The fingerprint of the config/module offered for resume.
        machine: u64,
    },
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::SchedulerMismatch {
                checkpoint,
                requested,
            } => write!(
                f,
                "checkpoint was taken under scheduler '{checkpoint}' but resume requested \
                 '{requested}' (schedulers define the schedule and are not interchangeable)"
            ),
            ResumeError::ConfigMismatch {
                checkpoint,
                machine,
            } => write!(
                f,
                "checkpoint fingerprint mismatch: checkpoint 0x{checkpoint:016x} vs machine \
                 0x{machine:016x} (different module, config, or thread count)"
            ),
        }
    }
}

impl std::error::Error for ResumeError {}

/// Per-checkpoint control returned by the sink passed to
/// [`Machine::run_with_checkpoints`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptControl {
    /// Keep running.
    Continue,
    /// Stop now; the run returns [`RunOutcome::Aborted`]. The sink has
    /// already received the checkpoint at the abort point, so the caller
    /// can resume later from exactly here.
    Abort,
}

/// Result of a checkpointed run.
#[derive(Debug, PartialEq)]
pub enum RunOutcome {
    /// The program ran to completion (or hit the cycle limit).
    Finished {
        /// Whole-run metrics (identical to an uncheckpointed run).
        metrics: RunMetrics,
        /// Final shared memory image.
        memory: Vec<i64>,
        /// True when the cycle limit stopped the run.
        hit_limit: bool,
        /// Finalized sanitizer report, present iff
        /// [`MachineConfig::sanitize`] was set.
        sanitizer: Option<SanitizerReport>,
    },
    /// The sink aborted the run at a checkpoint boundary.
    Aborted {
        /// The cycle at which the run stopped (equal to the cycle of the
        /// last checkpoint handed to the sink).
        at_cycle: u64,
    },
}

pub(crate) enum Action {
    None,
    /// A tick skipped in a mode that does not execute ticks: the
    /// uninstrumented binary never contained it, so it must not consume a
    /// cycle either — the stepper immediately retries the next instruction.
    Free,
    Lock(i64),
    Unlock(i64),
    Barrier(u32),
    Exited,
}

/// One instruction executor. The contract is strict: an implementation
/// must fetch/apply/charge exactly as the interpreter does — same metric
/// increments, same [`DetCore::charge`] calls in the same order (the
/// jitter RNG is positional), same sanitizer sites, same frame coordinate
/// updates — so that every observable artifact (trace hash, receipt,
/// metrics, sanitizer report, checkpoint digest) is backend-invariant.
pub(crate) trait ExecBackend {
    /// Fetch, apply, and charge the next instruction (or terminator) of
    /// thread `t`. Returns the synchronization action, if any.
    fn exec_next(&self, core: &mut DetCore<'_>, t: usize) -> Action;
}

/// The tree-walking interpreter: decodes IR on every step. The oracle.
pub(crate) struct InterpBackend;

impl ExecBackend for InterpBackend {
    #[inline]
    fn exec_next(&self, core: &mut DetCore<'_>, t: usize) -> Action {
        core.interp_exec_next(t)
    }
}

/// Static enum dispatch over the two backends (no vtable in the hot loop).
pub(crate) enum ExecImpl {
    Interp(InterpBackend),
    Threaded(crate::lower::ThreadedBackend),
}

/// The backend-agnostic determinism and scheduling core: arbitration,
/// clocks, lock/barrier tables, metrics, checkpoints, sanitizer. Shared
/// verbatim by both execution backends; the only thing a backend supplies
/// is [`ExecBackend::exec_next`].
pub(crate) struct DetCore<'m> {
    pub(crate) module: &'m Module,
    pub(crate) cost: &'m CostModel,
    pub(crate) cfg: MachineConfig,
    pub(crate) threads: Vec<Thread>,
    pub(crate) mem: Vec<i64>,
    pub(crate) locks: HashMap<i64, LockState>,
    pub(crate) barriers: HashMap<u32, BarrierState>,
    pub(crate) hasher: OrderHasher,
    pub(crate) lock_order: Vec<(i64, u32)>,
    pub(crate) cycle: u64,
    pub(crate) done_count: usize,
    pub(crate) replay_pos: usize,
    /// Bulk-sync: remaining commit-phase stall cycles.
    pub(crate) commit_stall: u64,
    /// Happens-before sanitizer (`None` unless `cfg.sanitize`): the
    /// disabled path costs exactly one null check per hook site.
    pub(crate) san: Option<Box<Sanitizer>>,
    /// The arbitration policy (built from `cfg.scheduler`). Consulted
    /// once per round in deterministic modes; its private state (if any)
    /// rides every [`Checkpoint`].
    pub(crate) sched: SchedImpl,
    /// Chunked store-counter parameters, hoisted out of the scheduler:
    /// `Some` iff the mode is deterministic and the policy drives clocks
    /// from retired stores. Consulted on every store retirement and by
    /// the threaded backend's fusion gate. Derived, never checkpointed.
    pub(crate) chunk: Option<ChunkParams>,
    /// Scratch view buffer handed to the scheduler each round — rebuilt
    /// per round, so not part of a [`Checkpoint`].
    views: Vec<ThreadView>,
    /// Scratch buffer for builtin-call argument evaluation — transient
    /// within one `exec_next`, so it is *not* part of a [`Checkpoint`].
    pub(crate) scratch_args: Vec<i64>,
    /// Checkpoint interval of the driving loop (0 = none). Derived from the
    /// caller each run — not machine state, so not part of a [`Checkpoint`]
    /// — and consulted only to clamp the countdown fast-forward in
    /// [`DetCore::round`] so batching never skips a snapshot boundary.
    pub(crate) ckpt_every: u64,
    /// `mem.len() - 1` when the memory size is a power of two: address
    /// wrapping then becomes a mask instead of a 64-bit `rem_euclid`
    /// division per load/store. Derived from `mem`, never checkpointed.
    pub(crate) mem_mask: Option<u64>,
    /// Rotation cache (all derived, never checkpointed): `rot_start` is
    /// `(rot_cycle · φ64 + jitter.seed) mod n` and `rot_acc` the same
    /// product before the reduction. [`DetCore::rotation_start`] keeps them
    /// in sync with `cycle`, advancing incrementally (no division) in the
    /// common +1 case.
    pub(crate) rot_cycle: u64,
    pub(crate) rot_acc: u64,
    pub(crate) rot_start: usize,
    /// `φ64 mod n` — the per-cycle rotation stride after reduction.
    pub(crate) rot_stride: usize,
    /// `(n - 2^64 mod n) mod n` — correction applied when `rot_acc` wraps.
    pub(crate) rot_wrap_adj: usize,
}

/// The rotation multiplier (64-bit golden ratio; Weyl sequence over tids).
const ROT_MUL: u64 = 0x9e3779b97f4a7c15;

/// Initial rotation cache for a core at `cycle` with `n` threads: returns
/// `(rot_cycle, rot_acc, rot_start, rot_stride, rot_wrap_adj)`.
fn init_rotation(cycle: u64, seed: u64, n: usize) -> (u64, u64, usize, usize, usize) {
    let acc = cycle.wrapping_mul(ROT_MUL).wrapping_add(seed);
    let start = (acc % n as u64) as usize;
    let stride = (ROT_MUL % n as u64) as usize;
    let wrap_adj = ((n as u128 - (1u128 << 64) % n as u128) % n as u128) as usize;
    (cycle, acc, start, stride, wrap_adj)
}

/// The simulator. Build with [`Machine::new`], run with [`Machine::run`].
pub struct Machine<'m> {
    core: DetCore<'m>,
    exec: ExecImpl,
}

/// Chunked store-counter parameters in effect for a config: the policy's
/// chunk knobs, active only in deterministic modes (nondeterministic
/// modes never consult the scheduler, so their clocks must not move).
fn chunk_of(cfg: &MachineConfig) -> Option<ChunkParams> {
    if cfg.mode.deterministic() {
        cfg.scheduler.chunk_params()
    } else {
        None
    }
}

fn make_exec(module: &Module, cost: &CostModel, backend: Backend) -> ExecImpl {
    match backend {
        Backend::Interp => ExecImpl::Interp(InterpBackend),
        Backend::Threaded => ExecImpl::Threaded(crate::lower::ThreadedBackend::new(
            crate::lower::lowered(module, cost),
        )),
    }
}

impl<'m> Machine<'m> {
    /// Create a machine over `module` with one core per thread spec.
    pub fn new(
        module: &'m Module,
        cost: &'m CostModel,
        threads: &[ThreadSpec],
        cfg: MachineConfig,
    ) -> Machine<'m> {
        assert!(!threads.is_empty(), "need at least one thread");
        let mem = vec![0i64; cfg.mem_words.max(1)];
        let threads: Vec<Thread> = threads
            .iter()
            .enumerate()
            .map(|(tid, spec)| {
                let func = &module.functions[spec.func.index()];
                assert!(
                    spec.args.len() == func.params as usize,
                    "thread {tid}: entry {} expects {} args, got {}",
                    func.name,
                    func.params,
                    spec.args.len()
                );
                let mut regs = vec![0i64; func.num_regs as usize];
                regs[..spec.args.len()].copy_from_slice(&spec.args);
                Thread {
                    status: Status::Ready,
                    frames: vec![Frame {
                        func: spec.func,
                        block: BlockId(0),
                        ip: 0,
                        reg_base: 0,
                        ret_dst: None,
                    }],
                    regs,
                    clock: 0,
                    pending: 0,
                    quantum_left: match cfg.mode {
                        ExecMode::BulkSync(p) => p.quantum,
                        _ => u64::MAX,
                    },
                    round_stores: 0,
                    rng: SmallRng::seed_from_u64(
                        cfg.jitter.seed ^ (tid as u64).wrapping_mul(0x9e3779b97f4a7c15),
                    ),
                    m: ThreadMetrics::default(),
                }
            })
            .collect();
        let san = cfg
            .sanitize
            .then(|| Box::new(Sanitizer::new(threads.len())));
        let exec = make_exec(module, cost, cfg.backend);
        let sched = cfg.scheduler.build();
        let chunk = chunk_of(&cfg);
        let mem_mask = mem.len().is_power_of_two().then(|| mem.len() as u64 - 1);
        let (rot_cycle, rot_acc, rot_start, rot_stride, rot_wrap_adj) =
            init_rotation(0, cfg.jitter.seed, threads.len());
        Machine {
            core: DetCore {
                module,
                cost,
                cfg,
                threads,
                mem,
                locks: HashMap::new(),
                barriers: HashMap::new(),
                hasher: OrderHasher::new(),
                lock_order: Vec::new(),
                cycle: 0,
                done_count: 0,
                replay_pos: 0,
                commit_stall: 0,
                san,
                sched,
                chunk,
                views: Vec::new(),
                scratch_args: Vec::new(),
                ckpt_every: 0,
                mem_mask,
                rot_cycle,
                rot_acc,
                rot_start,
                rot_stride,
                rot_wrap_adj,
            },
            exec,
        }
    }

    /// Run to completion (or the cycle limit). Returns metrics plus whether
    /// the limit was hit.
    pub fn run(self) -> (RunMetrics, bool) {
        let (metrics, _mem, hit) = self.run_with_memory();
        (metrics, hit)
    }

    /// Like [`Machine::run`], additionally returning the final shared
    /// memory — lets tests assert that deterministic runs converge to
    /// identical program *state*, not just identical lock orders.
    pub fn run_with_memory(self) -> (RunMetrics, Vec<i64>, bool) {
        let (metrics, mem, hit, _) = self.run_sanitized_inner();
        (metrics, mem, hit)
    }

    /// Like [`Machine::run_with_memory`], additionally returning the
    /// finalized [`SanitizerReport`] when [`MachineConfig::sanitize`] was
    /// set (`None` otherwise).
    pub fn run_sanitized(self) -> (RunMetrics, Vec<i64>, bool, Option<SanitizerReport>) {
        self.run_sanitized_inner()
    }

    fn run_sanitized_inner(mut self) -> (RunMetrics, Vec<i64>, bool, Option<SanitizerReport>) {
        let n = self.core.threads.len();
        while self.core.done_count < n && self.core.cycle < self.core.cfg.max_cycles {
            self.core.round(&self.exec);
        }
        self.core.into_results()
    }

    /// Run with a checkpoint sink: every `every` cycles (a round boundary
    /// of the arbiter loop — the snapshot is a pure read between rounds, so
    /// placement cannot perturb the schedule) the sink receives a
    /// [`Checkpoint`] and decides whether to continue or abort. `every = 0`
    /// disables checkpointing entirely. On a machine built by
    /// [`Machine::resume`], the first sink call happens one full interval
    /// *after* the resume point, not at it.
    pub fn run_with_checkpoints(
        mut self,
        every: u64,
        sink: &mut dyn FnMut(&Checkpoint) -> CkptControl,
    ) -> RunOutcome {
        let n = self.core.threads.len();
        let resumed_at = self.core.cycle;
        self.core.ckpt_every = every;
        while self.core.done_count < n && self.core.cycle < self.core.cfg.max_cycles {
            if every > 0 && self.core.cycle.is_multiple_of(every) && self.core.cycle != resumed_at {
                let ckpt = self.snapshot();
                if sink(&ckpt) == CkptControl::Abort {
                    return RunOutcome::Aborted {
                        at_cycle: self.core.cycle,
                    };
                }
            }
            self.core.round(&self.exec);
        }
        let (metrics, memory, hit_limit, sanitizer) = self.core.into_results();
        RunOutcome::Finished {
            metrics,
            memory,
            hit_limit,
            sanitizer,
        }
    }

    /// Take a [`Checkpoint`] of the current state (a pure read).
    pub fn snapshot(&self) -> Checkpoint {
        let core = &self.core;
        Checkpoint {
            fingerprint: config_fingerprint(&core.cfg, core.module, core.threads.len()),
            sched: core.cfg.scheduler,
            sched_state: core.sched.save_state(),
            cycle: core.cycle,
            threads: core.threads.clone(),
            mem: core.mem.clone(),
            locks: core.locks.clone(),
            barriers: core.barriers.clone(),
            hasher: core.hasher.clone(),
            lock_order: core.lock_order.clone(),
            done_count: core.done_count,
            replay_pos: core.replay_pos,
            commit_stall: core.commit_stall,
            san: core.san.clone(),
        }
    }

    /// Rebuild a machine from a checkpoint, continuing exactly where the
    /// snapshot was taken. `module`, `cost`, and `cfg` must match what the
    /// checkpoint was taken under — the scheduling policy and the
    /// structural fingerprint are checked and a mismatch is refused with a
    /// typed [`ResumeError`] rather than allowed to silently diverge (the
    /// [`Backend`] is the one config knob allowed to differ). The caller
    /// is responsible for passing the *same* compiled module
    /// (byte-identical compiles, e.g. from a shared plan cache, qualify).
    pub fn resume(
        module: &'m Module,
        cost: &'m CostModel,
        cfg: MachineConfig,
        ckpt: &Checkpoint,
    ) -> Result<Machine<'m>, ResumeError> {
        if cfg.scheduler != ckpt.sched {
            return Err(ResumeError::SchedulerMismatch {
                checkpoint: ckpt.sched,
                requested: cfg.scheduler,
            });
        }
        let fp = config_fingerprint(&cfg, module, ckpt.threads.len());
        if fp != ckpt.fingerprint {
            return Err(ResumeError::ConfigMismatch {
                checkpoint: ckpt.fingerprint,
                machine: fp,
            });
        }
        let exec = make_exec(module, cost, cfg.backend);
        let mut sched = cfg.scheduler.build();
        sched.load_state(&ckpt.sched_state);
        let chunk = chunk_of(&cfg);
        let mem_mask = ckpt
            .mem
            .len()
            .is_power_of_two()
            .then(|| ckpt.mem.len() as u64 - 1);
        let (rot_cycle, rot_acc, rot_start, rot_stride, rot_wrap_adj) =
            init_rotation(ckpt.cycle, cfg.jitter.seed, ckpt.threads.len());
        Ok(Machine {
            core: DetCore {
                module,
                cost,
                cfg,
                threads: ckpt.threads.clone(),
                mem: ckpt.mem.clone(),
                locks: ckpt.locks.clone(),
                barriers: ckpt.barriers.clone(),
                hasher: ckpt.hasher.clone(),
                lock_order: ckpt.lock_order.clone(),
                cycle: ckpt.cycle,
                done_count: ckpt.done_count,
                replay_pos: ckpt.replay_pos,
                commit_stall: ckpt.commit_stall,
                san: ckpt.san.clone(),
                sched,
                chunk,
                views: Vec::new(),
                scratch_args: Vec::new(),
                ckpt_every: 0,
                mem_mask,
                rot_cycle,
                rot_acc,
                rot_start,
                rot_stride,
                rot_wrap_adj,
            },
            exec,
        })
    }
}

impl<'m> DetCore<'m> {
    /// One round of the main loop: commit-stall / serial-phase handling in
    /// bulk-sync mode, otherwise one arbiter turn stepping every thread.
    /// Advances `self.cycle` by exactly 1 — except when every live thread
    /// is mid-instruction, where the equivalent of several rounds is
    /// applied at once (see the countdown fast-forward below).
    fn round(&mut self, exec: &ExecImpl) {
        // One enum match per *round*, not per step: `round_inner` is
        // monomorphized per backend, so every `exec_next` call below is a
        // direct (inlinable) call instead of a dispatch in the hot loop.
        match exec {
            ExecImpl::Interp(b) => self.round_inner(b),
            ExecImpl::Threaded(b) => self.round_inner(b),
        }
    }

    fn round_inner<B: ExecBackend>(&mut self, exec: &B) {
        let n = self.threads.len();
        let bulk = self.cfg.mode.bulk_sync();
        if let Some(bp) = bulk {
            if self.commit_stall > 0 {
                // Commit phase: every thread stalls.
                self.commit_stall -= 1;
                for th in self.threads.iter_mut() {
                    if th.status != Status::Done {
                        th.m.wait_cycles += 1;
                    }
                }
                self.cycle += 1;
                return;
            }
            if self.bulk_round_complete() {
                self.bulk_serial_phase(bp);
                self.cycle += 1;
                return;
            }
        }
        // One pass over the threads fills the scheduler's view and
        // computes the countdown fast-forward bound `k` (min `pending` if
        // every live thread is Ready and mid-instruction, else 0).
        let mut k = u64::MAX;
        {
            let views = &mut self.views;
            views.clear();
            for th in &self.threads {
                let phase = match th.status {
                    Status::Done => Phase::Done,
                    Status::Ready => {
                        if th.pending == 0 {
                            k = 0;
                        } else if th.pending < k {
                            k = th.pending;
                        }
                        Phase::Runnable
                    }
                    Status::AcquiringLock(_) | Status::AcquiringBarrier(_) | Status::ExitWait => {
                        k = 0;
                        Phase::Arbitrating
                    }
                    Status::InBarrier(_) | Status::QuantumDone => {
                        // Parked: no turn participation.
                        k = 0;
                        Phase::Parked
                    }
                };
                views.push(ThreadView {
                    phase,
                    clock: th.clock,
                    pending: th.pending,
                });
            }
        }
        // Countdown fast-forward: when every live thread is Ready and
        // mid-instruction (`pending > 0`), the next `k` rounds are pure
        // counter decrements — no scheduler decision can fire, no RNG is
        // drawn, no instruction issues. Apply all `k` in one pass. Clamped
        // so the cycle counter still lands exactly on every checkpoint
        // boundary and on `max_cycles`; batching is thus invisible to
        // snapshots, crash plans, and all metrics — and scheduler-agnostic,
        // because a policy only ever decides *synchronization*, which
        // cannot happen mid-countdown. (Bulk-sync is excluded: its quantum
        // bookkeeping runs per cycle.)
        if bulk.is_none() && k > 0 && k < u64::MAX {
            k = k.min(self.cfg.max_cycles - self.cycle);
            if let Some(intervals) = self.cycle.checked_div(self.ckpt_every) {
                let next = (intervals + 1) * self.ckpt_every;
                k = k.min(next - self.cycle);
            }
            for th in self.threads.iter_mut() {
                if th.status != Status::Done {
                    th.pending -= k;
                    th.m.busy_cycles += k;
                }
            }
            self.cycle += k;
            return;
        }
        // Deterministic modes delegate the round's synchronization
        // decision to the policy; nondeterministic modes never consult it
        // (their grants are FCFS / replayed / bulk-serial).
        let turn = if self.cfg.mode.deterministic() {
            match self.sched.decide(&self.views) {
                Decision::Turn(t) => t,
                Decision::Batch(order) => {
                    self.commit_batch(&order);
                    self.cycle += 1;
                    return;
                }
            }
        } else {
            None
        };
        // Rotate the service order so baseline FCFS has no fixed
        // lowest-tid bias; in deterministic modes only the turn holder
        // acts on sync events, so rotation is inert there.
        let start = self.rotation_start(n);
        for k in 0..n {
            // `start + k < 2n`, so a conditional subtraction replaces the
            // 64-bit modulo the old `(start + k) % n` paid per step.
            let mut t = start + k;
            if t >= n {
                t -= n;
            }
            self.step(t, turn, exec);
        }
        self.cycle += 1;
    }

    /// `(cycle · φ64 + jitter.seed) mod n`, the round's rotation offset —
    /// served from the incremental cache. The +1 case (every executing
    /// round) is a stride add with a wrap correction, no division; any
    /// other jump (fast-forward, resume) recomputes from scratch.
    #[inline]
    fn rotation_start(&mut self, n: usize) -> usize {
        if self.cycle == self.rot_cycle {
            return self.rot_start;
        }
        if self.cycle == self.rot_cycle.wrapping_add(1) {
            let old = self.rot_acc;
            self.rot_acc = old.wrapping_add(ROT_MUL);
            let mut r = self.rot_start + self.rot_stride;
            if self.rot_acc < old {
                // The 2^64 wrap dropped a `2^64 mod n` residue.
                r += self.rot_wrap_adj;
            }
            while r >= n {
                r -= n;
            }
            self.rot_start = r;
        } else {
            self.rot_acc = self
                .cycle
                .wrapping_mul(ROT_MUL)
                .wrapping_add(self.cfg.jitter.seed);
            self.rot_start = (self.rot_acc % n as u64) as usize;
        }
        self.rot_cycle = self.cycle;
        debug_assert_eq!(
            self.rot_start,
            ((self
                .cycle
                .wrapping_mul(ROT_MUL)
                .wrapping_add(self.cfg.jitter.seed))
                % n as u64) as usize
        );
        self.rot_start
    }

    fn into_results(self) -> (RunMetrics, Vec<i64>, bool, Option<SanitizerReport>) {
        let hit_limit = self.done_count < self.threads.len();
        let sanitizer = self.san.map(|s| s.finalize(self.module));
        let metrics = RunMetrics {
            cycles: self.cycle,
            per_thread: self.threads.into_iter().map(|t| t.m).collect(),
            lock_order_hash: self.hasher.value(),
            lock_order: self.lock_order,
            ghz: self.cfg.ghz,
        };
        (metrics, self.mem, hit_limit, sanitizer)
    }

    fn step<B: ExecBackend>(&mut self, t: usize, turn: Option<u32>, exec: &B) {
        let det = self.cfg.mode.deterministic();
        let tid = t as u32;
        match self.threads[t].status {
            Status::Done => {}
            Status::InBarrier(_) => {
                self.threads[t].m.wait_cycles += 1;
            }
            Status::QuantumDone => {
                self.threads[t].m.wait_cycles += 1;
            }
            Status::ExitWait => {
                if self.cfg.mode.bulk_sync().is_some() {
                    // Exits resolve in the serial phase.
                    self.threads[t].m.wait_cycles += 1;
                } else if !det || turn == Some(tid) {
                    self.finish(t);
                } else {
                    self.threads[t].m.wait_cycles += 1;
                }
            }
            Status::AcquiringBarrier(id) => {
                if self.cfg.mode.bulk_sync().is_some() {
                    self.threads[t].m.wait_cycles += 1;
                } else if !det || turn == Some(tid) {
                    self.arrive_barrier(t, id);
                } else {
                    self.threads[t].m.wait_cycles += 1;
                }
            }
            Status::AcquiringLock(id) => {
                if self.cfg.mode.bulk_sync().is_some() {
                    // Grants happen only in the serial phase.
                    self.threads[t].m.wait_cycles += 1;
                } else if det {
                    if turn == Some(tid) {
                        let (held_by, release_clock) = {
                            let st = self.locks.entry(id).or_default();
                            (st.held_by, st.release_clock)
                        };
                        let clock = self.threads[t].clock;
                        // The policy decides whether logical release
                        // precedence gates the grant (Kendo's rule) on
                        // top of the physical hold state.
                        let logically_free = held_by.is_none()
                            && (!self.sched.uses_release_clocks()
                                || release_clock.is_none_or(|r| r < clock));
                        if logically_free {
                            self.grant_lock(t, id);
                        } else if self.sched.bumps_on_contention() {
                            // Deterministic clock bump and retry (Kendo).
                            self.threads[t].clock += 1;
                            self.threads[t].m.lock_clock_bumps += 1;
                            self.threads[t].m.wait_cycles += 1;
                        } else {
                            self.threads[t].m.wait_cycles += 1;
                        }
                    } else {
                        self.threads[t].m.wait_cycles += 1;
                    }
                } else if self.cfg.mode.replayed() {
                    // Grant only when the log names this thread next for
                    // this lock (and the lock is physically free).
                    let held = self.locks.entry(id).or_default().held_by;
                    let next = self.cfg.replay_log.get(self.replay_pos).copied();
                    if held.is_none() && next == Some((id, tid)) {
                        self.replay_pos += 1;
                        self.grant_lock(t, id);
                    } else {
                        self.threads[t].m.wait_cycles += 1;
                    }
                } else {
                    let held = self.locks.entry(id).or_default().held_by;
                    if held.is_none() {
                        self.grant_lock(t, id);
                    } else {
                        self.threads[t].m.wait_cycles += 1;
                    }
                }
            }
            Status::Ready => {
                // Bulk-sync quanta are counted in *instructions* (as in
                // CoreDet), not cycles: jitter must not change which
                // instructions land in a round, or determinism is lost.
                if self.cfg.mode.bulk_sync().is_some() && self.threads[t].quantum_left == 0 {
                    self.threads[t].status = Status::QuantumDone;
                    self.threads[t].m.wait_cycles += 1;
                    return;
                }
                if self.threads[t].pending > 0 {
                    self.threads[t].pending -= 1;
                    self.threads[t].m.busy_cycles += 1;
                    return;
                }
                if self.cfg.mode.bulk_sync().is_some() {
                    self.threads[t].quantum_left -= 1;
                }
                let mut action = exec.exec_next(self, t);
                // Skipped ticks are free: retry until a real instruction
                // issues this cycle.
                while matches!(action, Action::Free) {
                    action = exec.exec_next(self, t);
                }
                match action {
                    Action::None | Action::Free => {}
                    Action::Lock(id) => {
                        self.threads[t].status = Status::AcquiringLock(id);
                    }
                    Action::Unlock(id) => {
                        let clock = self.threads[t].clock;
                        let st = self.locks.entry(id).or_default();
                        st.held_by = None;
                        st.release_clock = Some(clock);
                        if det {
                            self.threads[t].clock += 1;
                        }
                        if let Some(san) = self.san.as_deref_mut() {
                            san.release(tid, id);
                        }
                        self.charge(t, self.cost.sync);
                    }
                    Action::Barrier(id) => {
                        self.threads[t].status = Status::AcquiringBarrier(id);
                    }
                    Action::Exited => {
                        self.threads[t].status = Status::ExitWait;
                        // Baseline exits resolve immediately next step; in
                        // deterministic modes the exit is a det event.
                    }
                }
            }
        }
    }

    /// Commit one [`Decision::Batch`]: the listed threads perform their
    /// pending synchronization events in batch order, against the lock
    /// table as it evolves within the batch — the deterministic-
    /// consistency commit round. A member whose lock is physically held
    /// when its slot comes stays blocked (no clock bump: the batch
    /// policy's contention rule) and joins a later batch; because batches
    /// only form at quiescence, any such holder is itself in this batch
    /// or parked, so nested acquisitions drain batch-by-batch. Grants go
    /// through [`DetCore::grant_lock`], so protocol costs, trace-hash
    /// records, and sanitizer hooks are identical to turn-based grants.
    fn commit_batch(&mut self, order: &[u32]) {
        for &tid in order {
            let t = tid as usize;
            match self.threads[t].status {
                Status::AcquiringLock(id) => {
                    // Physical hold state alone gates the grant
                    // (`uses_release_clocks` is false for batch policies):
                    // the batch order *is* the logical order.
                    let held = self.locks.entry(id).or_default().held_by;
                    if held.is_none() {
                        self.grant_lock(t, id);
                    } else {
                        self.threads[t].m.wait_cycles += 1;
                    }
                }
                Status::AcquiringBarrier(id) => self.arrive_barrier(t, id),
                Status::ExitWait => self.finish(t),
                // A barrier arrival earlier in the batch released this
                // member back to Ready; it resumes next round.
                _ => {}
            }
        }
        for th in self.threads.iter_mut() {
            if matches!(th.status, Status::InBarrier(_)) {
                th.m.wait_cycles += 1;
            }
        }
    }

    /// Bulk-sync: is every live thread parked at the round barrier (quantum
    /// exhausted, pending sync op, exiting) or inside an application
    /// barrier?
    fn bulk_round_complete(&self) -> bool {
        let mut any_parked = false;
        for th in &self.threads {
            match th.status {
                Status::Done | Status::InBarrier(_) => {}
                Status::QuantumDone
                | Status::AcquiringLock(_)
                | Status::AcquiringBarrier(_)
                | Status::ExitWait => any_parked = true,
                Status::Ready => return false,
            }
        }
        any_parked
    }

    /// Bulk-sync serial phase: commit the round's store buffers (a stall
    /// charged to everyone) and run pending synchronization operations in
    /// thread-id order — CoreDet's deterministic serial mode.
    fn bulk_serial_phase(&mut self, bp: BulkSyncParams) {
        let total_stores: u64 = self.threads.iter().map(|t| t.round_stores).sum();
        self.commit_stall = bp.commit_base + bp.commit_per_store * total_stores;
        for t in 0..self.threads.len() {
            match self.threads[t].status {
                Status::AcquiringLock(id) => {
                    let held = self.locks.entry(id).or_default().held_by;
                    if held.is_none() {
                        self.grant_lock(t, id);
                    }
                }
                Status::AcquiringBarrier(id) => {
                    self.arrive_barrier(t, id);
                }
                Status::ExitWait => {
                    self.finish(t);
                }
                _ => {}
            }
        }
        for th in self.threads.iter_mut() {
            th.round_stores = 0;
            th.quantum_left = bp.quantum;
            if th.status == Status::QuantumDone {
                th.status = Status::Ready;
            }
        }
    }

    fn grant_lock(&mut self, t: usize, id: i64) {
        let tid = t as u32;
        {
            let st = self.locks.entry(id).or_default();
            st.held_by = Some(tid);
        }
        if self.san.is_some() {
            // The frame's ip already points past the Lock instruction the
            // thread blocked on.
            let site = {
                let fr = self.threads[t].frames.last().unwrap();
                (
                    fr.func.index() as u32,
                    fr.block.index() as u32,
                    fr.ip.saturating_sub(1) as u32,
                )
            };
            if let Some(san) = self.san.as_deref_mut() {
                san.acquire(tid, id, site);
            }
        }
        if self.cfg.mode.deterministic() {
            self.threads[t].clock += 1;
        }
        self.threads[t].m.lock_acquires += 1;
        self.threads[t].status = Status::Ready;
        let protocol = if self.cfg.mode.deterministic() {
            self.cfg.det_event_cost
        } else {
            0
        };
        self.charge(t, self.cost.sync + protocol);
        self.hasher.record(id, tid);
        if self.lock_order.len() < self.cfg.lock_order_limit {
            self.lock_order.push((id, tid));
        }
    }

    fn arrive_barrier(&mut self, t: usize, id: u32) {
        let tid = t as u32;
        self.threads[t].m.barrier_waits += 1;
        self.threads[t].status = Status::InBarrier(id);
        let bar = self.barriers.entry(id).or_default();
        bar.arrivals.push(tid);
        let everyone = self.threads.len() - self.done_count;
        if bar.arrivals.len() >= everyone {
            // Release: reconcile clocks to max+1 in deterministic modes.
            let arrivals = std::mem::take(&mut self.barriers.get_mut(&id).unwrap().arrivals);
            if let Some(san) = self.san.as_deref_mut() {
                san.barrier(&arrivals);
            }
            let new_clock = arrivals
                .iter()
                .map(|&a| self.threads[a as usize].clock)
                .max()
                .unwrap_or(0)
                + 1;
            let det = self.cfg.mode.deterministic();
            for a in arrivals {
                let th = &mut self.threads[a as usize];
                th.status = Status::Ready;
                if det {
                    th.clock = new_clock;
                }
                th.pending = self.cost.sync;
            }
        }
    }

    fn finish(&mut self, t: usize) {
        self.threads[t].status = Status::Done;
        self.threads[t].m.finish_cycle = self.cycle;
        self.threads[t].m.final_clock = self.threads[t].clock;
        self.done_count += 1;
    }

    /// Charge `cost` cycles for the instruction just applied (1 cycle is
    /// consumed now; the remainder plus jitter occupies subsequent cycles).
    pub(crate) fn charge(&mut self, t: usize, cost: u64) {
        charge_thread(&mut self.threads[t], &self.cfg.jitter, cost);
    }

    #[inline]
    fn set_reg(&mut self, t: usize, r: Reg, v: i64) {
        let th = &mut self.threads[t];
        let base = th.frames.last().unwrap().reg_base;
        th.regs[base + r.index()] = v;
    }

    /// Register read against a hoisted frame base — the hot-loop variant
    /// that skips the per-access `frames.last()` lookup.
    #[inline]
    pub(crate) fn reg_at(&self, t: usize, base: usize, r: Reg) -> i64 {
        self.threads[t].regs[base + r.index()]
    }

    /// Register write against a hoisted frame base.
    #[inline]
    pub(crate) fn set_reg_at(&mut self, t: usize, base: usize, r: Reg, v: i64) {
        self.threads[t].regs[base + r.index()] = v;
    }

    #[inline]
    pub(crate) fn operand_at(&self, t: usize, base: usize, o: Operand) -> i64 {
        match o {
            Operand::Reg(r) => self.reg_at(t, base, r),
            Operand::Imm(v) => v,
        }
    }

    #[inline]
    pub(crate) fn mem_index(&self, addr: i64) -> usize {
        mem_index_of(self.mem_mask, self.mem.len(), addr)
    }

    /// Sanitizer memory hook: record the access at the instruction site
    /// `frame` points at. A no-op (one null check) when sanitizing is off.
    #[inline]
    pub(crate) fn san_access(&mut self, t: usize, word: usize, write: bool, frame: Frame) {
        if let Some(san) = self.san.as_deref_mut() {
            san.access(
                t as u32,
                word,
                write,
                (
                    frame.func.index() as u32,
                    frame.block.index() as u32,
                    frame.ip as u32,
                ),
            );
        }
    }

    pub(crate) fn retired_store(&mut self, t: usize, count: u64) {
        retire_stores(&mut self.threads[t], self.chunk, count);
    }

    /// Shared builtin semantics: apply `builtin` to the already-evaluated
    /// arguments, including the memset/memcpy memory side effects and
    /// sanitizer hooks. Both backends call this, so the store-retirement
    /// accounting and san-site order agree by construction.
    #[inline]
    pub(crate) fn apply_builtin(
        &mut self,
        t: usize,
        builtin: detlock_ir::Builtin,
        argv: &[i64],
        size: i64,
        frame: Frame,
    ) -> i64 {
        use detlock_ir::Builtin as B;
        match builtin {
            B::Memset => {
                let (base, val, len) = (
                    argv.first().copied().unwrap_or(0),
                    argv.get(1).copied().unwrap_or(0),
                    size.max(0),
                );
                for k in 0..len.min(self.mem.len() as i64) {
                    let idx = self.mem_index(base.wrapping_add(k));
                    self.mem[idx] = val;
                    self.san_access(t, idx, true, frame);
                }
                self.retired_store(t, len.max(0) as u64);
                0
            }
            B::Memcpy => {
                let (d, s, len) = (
                    argv.first().copied().unwrap_or(0),
                    argv.get(1).copied().unwrap_or(0),
                    size.max(0),
                );
                for k in 0..len.min(self.mem.len() as i64) {
                    let si = self.mem_index(s.wrapping_add(k));
                    let di = self.mem_index(d.wrapping_add(k));
                    self.mem[di] = self.mem[si];
                    self.san_access(t, si, false, frame);
                    self.san_access(t, di, true, frame);
                }
                self.retired_store(t, len.max(0) as u64);
                0
            }
            B::Sqrt => builtins::isqrt(argv.first().copied().unwrap_or(0)),
            B::Sin => builtins::fixed_sin(argv.first().copied().unwrap_or(0)),
            B::Cos => builtins::fixed_cos(argv.first().copied().unwrap_or(0)),
            B::Exp => builtins::fixed_exp(argv.first().copied().unwrap_or(0)),
            B::Log => builtins::ilog2(argv.first().copied().unwrap_or(0)),
            B::Rand => builtins::xorshift64(argv.first().copied().unwrap_or(0)),
        }
    }

    /// The interpreter's fetch/apply/charge (see [`InterpBackend`]). The
    /// function/block/frame state is re-derived from the IR each step; the
    /// frame is `Copy` and the register base is hoisted once, so the loop
    /// carries no per-step allocation or repeated `frames.last()` walks.
    fn interp_exec_next(&mut self, t: usize) -> Action {
        let frame = *self.threads[t].frames.last().unwrap();
        let base = frame.reg_base;
        // `module` is a `&'m` field, so these borrows are independent of
        // `self` and stay live across the mutations below.
        let func = &self.module.functions[frame.func.index()];
        let block = &func.blocks[frame.block.index()];

        if frame.ip >= block.insts.len() {
            // Terminator.
            self.threads[t].m.instructions += 1;
            let term = &block.term;
            self.charge(t, self.cost.alu);
            match term {
                Terminator::Br { target } => {
                    let f = self.threads[t].frames.last_mut().unwrap();
                    f.block = *target;
                    f.ip = 0;
                }
                Terminator::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = self.reg_at(t, base, *cond);
                    let f = self.threads[t].frames.last_mut().unwrap();
                    f.block = if c != 0 { *then_bb } else { *else_bb };
                    f.ip = 0;
                }
                Terminator::Switch {
                    disc,
                    cases,
                    default,
                } => {
                    let d = self.reg_at(t, base, *disc);
                    let target = cases
                        .iter()
                        .find(|(v, _)| *v == d)
                        .map(|(_, b)| *b)
                        .unwrap_or(*default);
                    let f = self.threads[t].frames.last_mut().unwrap();
                    f.block = target;
                    f.ip = 0;
                }
                Terminator::Ret { value } => {
                    let v = value.map(|o| self.operand_at(t, base, o));
                    let th = &mut self.threads[t];
                    let popped = th.frames.pop().unwrap();
                    th.regs.truncate(popped.reg_base);
                    if th.frames.is_empty() {
                        return Action::Exited;
                    }
                    if let (Some(dst), Some(v)) = (popped.ret_dst, v) {
                        self.set_reg(t, dst, v);
                    }
                }
            }
            return Action::None;
        }

        let inst = &block.insts[frame.ip];
        // Advance ip first; sync instructions have already "issued".
        self.threads[t].frames.last_mut().unwrap().ip += 1;

        match inst {
            Inst::Const { dst, value } => {
                let (dst, value) = (*dst, *value);
                self.threads[t].m.instructions += 1;
                self.set_reg_at(t, base, dst, value);
                self.charge(t, self.cost.alu);
            }
            Inst::Mov { dst, src } => {
                let (dst, src) = (*dst, *src);
                self.threads[t].m.instructions += 1;
                let v = self.operand_at(t, base, src);
                self.set_reg_at(t, base, dst, v);
                self.charge(t, self.cost.alu);
            }
            Inst::Bin { op, dst, lhs, rhs } => {
                let (op, dst, lhs, rhs) = (*op, *dst, *lhs, *rhs);
                self.threads[t].m.instructions += 1;
                let a = self.reg_at(t, base, lhs);
                let b = self.operand_at(t, base, rhs);
                self.set_reg_at(t, base, dst, op.apply(a, b));
                let c = match op {
                    detlock_ir::BinOp::Mul => self.cost.mul,
                    detlock_ir::BinOp::Div | detlock_ir::BinOp::Rem => self.cost.div,
                    _ => self.cost.alu,
                };
                self.charge(t, c);
            }
            Inst::Cmp { op, dst, lhs, rhs } => {
                let (op, dst, lhs, rhs) = (*op, *dst, *lhs, *rhs);
                self.threads[t].m.instructions += 1;
                let a = self.reg_at(t, base, lhs);
                let b = self.operand_at(t, base, rhs);
                self.set_reg_at(t, base, dst, op.apply(a, b));
                self.charge(t, self.cost.alu);
            }
            Inst::Load { dst, addr, offset } => {
                let (dst, addr, offset) = (*dst, *addr, *offset);
                self.threads[t].m.instructions += 1;
                let a = self.reg_at(t, base, addr).wrapping_add(offset);
                let idx = self.mem_index(a);
                let v = self.mem[idx];
                self.san_access(t, idx, false, frame);
                self.set_reg_at(t, base, dst, v);
                self.charge(t, self.cost.load);
            }
            Inst::Store { src, addr, offset } => {
                let (src, addr, offset) = (*src, *addr, *offset);
                self.threads[t].m.instructions += 1;
                let a = self.reg_at(t, base, addr).wrapping_add(offset);
                let v = self.operand_at(t, base, src);
                let idx = self.mem_index(a);
                self.mem[idx] = v;
                self.san_access(t, idx, true, frame);
                self.charge(t, self.cost.store);
                self.retired_store(t, 1);
            }
            Inst::Call { func, args, dst } => {
                let callee_id = *func;
                let dst = *dst;
                self.threads[t].m.instructions += 1;
                let callee = &self.module.functions[callee_id.index()];
                // Grow the register file first, then evaluate arguments
                // straight into the callee's slots: the caller's registers
                // live below `reg_base`, so the resize cannot disturb them
                // and no temporary argument vector is needed.
                let reg_base = self.threads[t].regs.len();
                self.threads[t]
                    .regs
                    .resize(reg_base + callee.num_regs as usize, 0);
                for (i, &a) in args.iter().enumerate() {
                    let v = self.operand_at(t, base, a);
                    self.threads[t].regs[reg_base + i] = v;
                }
                self.threads[t].frames.push(Frame {
                    func: callee_id,
                    block: BlockId(0),
                    ip: 0,
                    reg_base,
                    ret_dst: dst,
                });
                self.charge(t, self.cost.call);
            }
            Inst::CallBuiltin {
                builtin,
                args,
                dst,
                size_arg,
            } => {
                let builtin = *builtin;
                let dst = *dst;
                let size_arg = *size_arg;
                self.threads[t].m.instructions += 1;
                let mut argv = std::mem::take(&mut self.scratch_args);
                argv.clear();
                argv.extend(args.iter().map(|&a| self.operand_at(t, base, a)));
                let est = self.cost.builtin(builtin);
                let size = size_arg.and_then(|i| argv.get(i).copied()).unwrap_or(0);
                let cycles = est.eval(size);
                let result = self.apply_builtin(t, builtin, &argv, size, frame);
                self.scratch_args = argv;
                if let Some(d) = dst {
                    self.set_reg_at(t, base, d, result);
                }
                self.charge(t, cycles.max(1));
            }
            Inst::Tick { amount } => {
                let amount = *amount;
                if self.cfg.mode.executes_ticks() {
                    self.threads[t].m.instructions += 1;
                    self.threads[t].m.ticks_executed += 1;
                    self.threads[t].clock += amount;
                    self.charge(t, self.cost.tick);
                } else {
                    // Baseline / Kendo: the binary was never instrumented —
                    // skip at zero cost and zero cycles.
                    return Action::Free;
                }
            }
            Inst::TickDyn {
                base: tick_base,
                per_unit,
                size,
            } => {
                let (tick_base, per_unit, size) = (*tick_base, *per_unit, *size);
                if self.cfg.mode.executes_ticks() {
                    self.threads[t].m.instructions += 1;
                    self.threads[t].m.ticks_executed += 1;
                    let s = self.operand_at(t, base, size).max(0) as u64;
                    self.threads[t].clock += tick_base + per_unit * s;
                    self.charge(t, self.cost.tick + self.cost.tick_dyn_extra);
                } else {
                    return Action::Free;
                }
            }
            Inst::Lock { id } => {
                let id = *id;
                self.threads[t].m.instructions += 1;
                let v = self.operand_at(t, base, id);
                return Action::Lock(v);
            }
            Inst::Unlock { id } => {
                let id = *id;
                self.threads[t].m.instructions += 1;
                let v = self.operand_at(t, base, id);
                return Action::Unlock(v);
            }
            Inst::Barrier { id } => {
                let id = *id;
                self.threads[t].m.instructions += 1;
                return Action::Barrier(id.0);
            }
        }
        Action::None
    }
}

/// Wrap `addr` into the memory of size `len` (`mask = len - 1` when `len`
/// is a power of two). The mask path equals `rem_euclid` exactly: in
/// two's complement, `addr as u64` is `addr + 2^64` for negative `addr`,
/// and `len` divides `2^64`, so masking yields the Euclidean residue
/// without the 64-bit division `rem_euclid` costs per load/store.
#[inline]
pub(crate) fn mem_index_of(mask: Option<u64>, len: usize, addr: i64) -> usize {
    match mask {
        Some(m) => (addr as u64 & m) as usize,
        None => addr.rem_euclid(len as i64) as usize,
    }
}

/// [`DetCore::charge`] over one thread's state: a free function so a
/// backend holding disjoint field borrows on the core can charge without
/// re-borrowing `&mut DetCore`. The jitter draw sequence on `th.rng` is
/// positional — every backend must call this exactly where the
/// interpreter would, or trace hashes diverge.
#[inline]
pub(crate) fn charge_thread(th: &mut Thread, jitter: &Jitter, cost: u64) {
    th.pending = charge_amount(th, jitter, cost);
    th.m.busy_cycles += 1;
}

/// The countdown a charge of `cost` earns: draws the jitter RNG exactly
/// like [`charge_thread`] but leaves `pending` and `busy_cycles` for the
/// caller — the fused-run path in the threaded backend accumulates several
/// charges (in program order, preserving the positional draw sequence)
/// into one combined countdown.
#[inline]
pub(crate) fn charge_amount(th: &mut Thread, jitter: &Jitter, cost: u64) -> u64 {
    let extra = if jitter.prob_den > 0
        && th.rng.gen_range(0..jitter.prob_den as u64) < jitter.prob_num as u64
    {
        1 + th.rng.gen_range(0..jitter.max_extra.max(1))
    } else {
        0
    };
    cost.saturating_sub(1) + extra
}

/// [`DetCore::retired_store`] over one thread's state (a free function for
/// the same reason as [`charge_thread`]). `chunk` is the core's hoisted
/// [`DetCore::chunk`]: `Some` iff a chunk-clock scheduler is active.
#[inline]
pub(crate) fn retire_stores(th: &mut Thread, chunk: Option<ChunkParams>, count: u64) {
    let before = th.m.retired_stores;
    th.m.retired_stores += count;
    th.round_stores += count;
    if let Some(cp) = chunk {
        // The virtualized performance counter only surfaces at overflow
        // interrupts: the clock advances in chunk_size units, and each
        // interrupt costs cycles.
        let chunks = th.m.retired_stores / cp.chunk_size - before / cp.chunk_size;
        if chunks > 0 {
            th.clock += chunks * cp.chunk_size;
            th.pending += chunks * cp.interrupt_cost;
        }
    }
}

/// Run a module on the simulator — the main entry point.
pub fn run(
    module: &Module,
    cost: &CostModel,
    threads: &[ThreadSpec],
    cfg: MachineConfig,
) -> (RunMetrics, bool) {
    Machine::new(module, cost, threads, cfg).run()
}
