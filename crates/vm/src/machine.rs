//! The cycle-level multicore simulator.
//!
//! Each thread is pinned to its own core and issues one instruction at a
//! time; an instruction occupies the core for its cost-model cycle count
//! (plus seeded OS-noise jitter). Synchronization intrinsics route through a
//! lock table and barrier table whose arbitration depends on the execution
//! mode:
//!
//! * [`ExecMode::Baseline`] — tick instructions are skipped at zero cost
//!   (the uninstrumented binary); locks are granted first-come-first-served,
//!   so the acquisition order varies with the jitter seed. This run defines
//!   "Original Exec Time" in Table I.
//! * [`ExecMode::ClocksOnly`] — ticks execute (and cost cycles) but locks
//!   stay FCFS: measures pure instrumentation overhead (Table I, "After
//!   Inserting Clocks").
//! * [`ExecMode::Det`] — ticks execute and every synchronization operation
//!   is a *deterministic event* performed only when the thread's logical
//!   clock is the global minimum (ties by thread id), following Kendo's
//!   algorithm as adopted by DetLock: a blocked acquirer deterministically
//!   bumps its clock and retries; a releaser stamps the lock with its
//!   release clock; an acquire succeeds only when the lock is free *and*
//!   logically released in the acquirer's past (Table I, "After Inserting
//!   Clocks and Performing Deterministic Execution").
//! * [`ExecMode::Kendo`] — same deterministic arbitration, but clocks come
//!   from a simulated *retired-store* hardware counter that only updates
//!   every `chunk_size` stores (costing `interrupt_cost` cycles per
//!   overflow interrupt), and ticks are skipped: the paper's Table II
//!   comparison baseline.

use crate::builtins;
use crate::metrics::{OrderHasher, RunMetrics, ThreadMetrics};
use crate::sanitizer::{Sanitizer, SanitizerReport};
use detlock_ir::inst::{Inst, Operand, Terminator};
use detlock_ir::module::Module;
use detlock_ir::types::{BlockId, FuncId, Reg};
use detlock_passes::cost::CostModel;
use detlock_shim::rng::SmallRng;
use std::collections::HashMap;

/// CoreDet-style bulk-synchronous parameters (paper §II): execution
/// proceeds in fixed quanta; threads that exhaust their quantum or reach a
/// synchronization operation wait for the round barrier; a commit phase
/// (publishing the round's store buffers) stalls everyone, then pending
/// synchronization operations run serially in thread-id order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BulkSyncParams {
    /// Cycles each thread may execute per round.
    pub quantum: u64,
    /// Fixed commit-phase cost per round.
    pub commit_base: u64,
    /// Additional commit cost per store executed in the round.
    pub commit_per_store: u64,
}

impl Default for BulkSyncParams {
    fn default() -> Self {
        BulkSyncParams {
            quantum: 2000,
            commit_base: 300,
            commit_per_store: 2,
        }
    }
}

/// Kendo-simulation parameters (Table II). The paper notes Kendo must
/// balance chunk size by hand; `chunk_size` is that knob.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KendoParams {
    /// Retired stores between performance-counter overflow interrupts.
    pub chunk_size: u64,
    /// Cycle cost of servicing one overflow interrupt.
    pub interrupt_cost: u64,
}

impl Default for KendoParams {
    fn default() -> Self {
        KendoParams {
            chunk_size: 1024,
            // A performance-counter overflow interrupt traps into the
            // kernel: order 10^3 cycles on the paper's era of hardware.
            interrupt_cost: 800,
        }
    }
}

/// Execution mode (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecMode {
    /// Uninstrumented, nondeterministic locks.
    Baseline,
    /// Instrumented, nondeterministic locks.
    ClocksOnly,
    /// Instrumented, deterministic (DetLock).
    Det,
    /// Uninstrumented, deterministic with chunked store-counter clocks.
    Kendo(KendoParams),
    /// Uninstrumented; lock grants forced to follow a recorded log
    /// (see [`crate::replay`]). Ticks are skipped and no clock arbitration
    /// runs — determinism comes entirely from the log.
    Replay,
    /// Uninstrumented; CoreDet-style deterministic rounds (see
    /// [`BulkSyncParams`]). No logical clocks: determinism comes from the
    /// quantum barrier and the serial sync phase.
    BulkSync(BulkSyncParams),
}

impl ExecMode {
    fn executes_ticks(self) -> bool {
        matches!(self, ExecMode::ClocksOnly | ExecMode::Det)
    }

    fn deterministic(self) -> bool {
        matches!(self, ExecMode::Det | ExecMode::Kendo(_))
    }

    fn replayed(self) -> bool {
        matches!(self, ExecMode::Replay)
    }

    fn bulk_sync(self) -> Option<BulkSyncParams> {
        match self {
            ExecMode::BulkSync(p) => Some(p),
            _ => None,
        }
    }
}

/// Seeded OS-noise model: with probability `prob_num/prob_den` an
/// instruction takes `1..=max_extra` extra cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Jitter {
    /// RNG seed (also perturbs baseline lock-grant rotation).
    pub seed: u64,
    /// Jitter probability numerator.
    pub prob_num: u32,
    /// Jitter probability denominator (0 disables jitter).
    pub prob_den: u32,
    /// Maximum extra cycles per jittered instruction.
    pub max_extra: u64,
}

impl Default for Jitter {
    fn default() -> Self {
        Jitter {
            seed: 1,
            prob_num: 1,
            prob_den: 64,
            max_extra: 3,
        }
    }
}

impl Jitter {
    /// A jitter config with a different seed (for determinism tests).
    pub fn with_seed(self, seed: u64) -> Jitter {
        Jitter { seed, ..self }
    }
}

/// One thread to run: an entry function and its arguments.
#[derive(Debug, Clone)]
pub struct ThreadSpec {
    /// Entry function.
    pub func: FuncId,
    /// Arguments placed in the entry function's parameter registers.
    pub args: Vec<i64>,
}

/// Machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Execution mode.
    pub mode: ExecMode,
    /// Words of shared memory.
    pub mem_words: usize,
    /// OS-noise model.
    pub jitter: Jitter,
    /// Safety stop: the run fails (`hit_cycle_limit`) past this many cycles.
    pub max_cycles: u64,
    /// Simulated core frequency (paper testbed: 2.66 GHz).
    pub ghz: f64,
    /// How many acquisition events to keep verbatim (hash covers all).
    pub lock_order_limit: usize,
    /// Protocol cost charged per deterministic lock acquisition in `Det` /
    /// `Kendo` modes: the arbitration rounds themselves are not free on
    /// real hardware (each turn check reads every other thread's clock
    /// cache line; the acquire publishes with fences — Kendo reports
    /// hundreds of cycles per deterministic lock operation). Baseline
    /// modes charge only the raw `sync` cost.
    pub det_event_cost: u64,
    /// The grant log consulted in [`ExecMode::Replay`] (set by
    /// [`crate::replay::replay`]).
    pub replay_log: std::sync::Arc<Vec<(i64, u32)>>,
    /// Run the `detsan` happens-before sanitizer (see [`crate::sanitizer`])
    /// alongside execution. Off by default: the only cost of the disabled
    /// path is one pointer-null check per memory/sync operation, which the
    /// perf gate holds to zero measurable overhead.
    pub sanitize: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            mode: ExecMode::Baseline,
            mem_words: 1 << 16,
            jitter: Jitter::default(),
            max_cycles: 20_000_000_000,
            ghz: 2.66,
            lock_order_limit: 100_000,
            det_event_cost: 120,
            replay_log: std::sync::Arc::new(Vec::new()),
            sanitize: false,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Status {
    Ready,
    AcquiringLock(i64),
    AcquiringBarrier(u32),
    InBarrier(u32),
    /// Bulk-sync mode: quantum exhausted; waiting for the round barrier.
    QuantumDone,
    ExitWait,
    Done,
}

#[derive(Debug, Clone)]
struct Frame {
    func: FuncId,
    block: BlockId,
    ip: usize,
    reg_base: usize,
    ret_dst: Option<Reg>,
}

#[derive(Clone)]
struct Thread {
    status: Status,
    frames: Vec<Frame>,
    regs: Vec<i64>,
    clock: u64,
    pending: u64,
    /// Bulk-sync: cycles left in the current quantum.
    quantum_left: u64,
    /// Bulk-sync: stores executed this round (drives the commit cost).
    round_stores: u64,
    rng: SmallRng,
    m: ThreadMetrics,
}

#[derive(Debug, Default, Clone)]
struct LockState {
    held_by: Option<u32>,
    release_clock: Option<u64>,
}

#[derive(Debug, Default, Clone)]
struct BarrierState {
    arrivals: Vec<u32>,
}

/// A deterministic snapshot of a running [`Machine`].
///
/// Captures *all* mutable machine state — per-thread frames, registers,
/// logical clocks, pending acquisitions, jitter-RNG positions, the shared
/// memory image, lock/barrier tables, and the trace-hash prefix — so that
/// [`Machine::resume`] continues the run exactly where the snapshot was
/// taken. Because snapshots are pure reads placed at round boundaries of
/// the min-clock arbiter (see [`Machine::run_with_checkpoints`]),
/// checkpoint placement cannot perturb the schedule: a resumed run
/// produces byte-identical final metrics (and hence receipts) to the
/// uninterrupted run.
///
/// A checkpoint is tied to the (module, config, thread-count) it was taken
/// under via a [`fingerprint`](Checkpoint::fingerprint); `resume` refuses a
/// mismatched fingerprint rather than silently diverging. It is plain data
/// (`Clone + Send`), so a serving layer can hand it to another worker —
/// cross-shard migration is sound exactly when both shards compiled the
/// byte-identical module, which the fingerprint asserts structurally.
#[derive(Clone)]
pub struct Checkpoint {
    fingerprint: u64,
    cycle: u64,
    threads: Vec<Thread>,
    mem: Vec<i64>,
    locks: HashMap<i64, LockState>,
    barriers: HashMap<u32, BarrierState>,
    hasher: OrderHasher,
    lock_order: Vec<(i64, u32)>,
    done_count: usize,
    replay_pos: usize,
    commit_stall: u64,
    /// Sanitizer state at the snapshot (present iff the run sanitizes), so
    /// resume-from-checkpoint reports the same races as run-from-zero.
    san: Option<Box<Sanitizer>>,
}

fn fnv_fold(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

impl Checkpoint {
    /// The cycle at which this snapshot was taken.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Threads that had already finished when the snapshot was taken.
    pub fn done_count(&self) -> usize {
        self.done_count
    }

    /// The trace-hash prefix: the FNV-1a fold over every `(lock, tid)`
    /// acquisition event that happened before the snapshot.
    pub fn trace_hash_prefix(&self) -> u64 {
        self.hasher.value()
    }

    /// The (module, config, thread-count) fingerprint this checkpoint is
    /// valid against.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Approximate heap footprint in bytes (memory image + registers),
    /// for capacity accounting in serving layers.
    pub fn approx_bytes(&self) -> usize {
        let regs: usize = self.threads.iter().map(|t| t.regs.len()).sum();
        (self.mem.len() + regs) * std::mem::size_of::<i64>()
    }

    /// A deep digest of the snapshot: two runs of the same program that
    /// agree on this value at a given cycle are in *identical* machine
    /// states (same frames, registers, clocks, memory, lock tables, RNG
    /// positions) and will therefore evolve identically. Used by tests to
    /// assert state convergence, not just trace-hash convergence.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        fnv_fold(&mut h, self.fingerprint);
        fnv_fold(&mut h, self.cycle);
        fnv_fold(&mut h, self.done_count as u64);
        fnv_fold(&mut h, self.replay_pos as u64);
        fnv_fold(&mut h, self.commit_stall);
        fnv_fold(&mut h, self.hasher.value());
        for &w in &self.mem {
            fnv_fold(&mut h, w as u64);
        }
        for th in &self.threads {
            let (tag, payload) = match th.status {
                Status::Ready => (0u64, 0u64),
                Status::AcquiringLock(id) => (1, id as u64),
                Status::AcquiringBarrier(id) => (2, id as u64),
                Status::InBarrier(id) => (3, id as u64),
                Status::QuantumDone => (4, 0),
                Status::ExitWait => (5, 0),
                Status::Done => (6, 0),
            };
            fnv_fold(&mut h, tag);
            fnv_fold(&mut h, payload);
            fnv_fold(&mut h, th.clock);
            fnv_fold(&mut h, th.pending);
            fnv_fold(&mut h, th.quantum_left);
            fnv_fold(&mut h, th.round_stores);
            for s in th.rng.state() {
                fnv_fold(&mut h, s);
            }
            for &r in &th.regs {
                fnv_fold(&mut h, r as u64);
            }
            for f in &th.frames {
                fnv_fold(&mut h, f.func.index() as u64);
                fnv_fold(&mut h, f.block.index() as u64);
                fnv_fold(&mut h, f.ip as u64);
                fnv_fold(&mut h, f.reg_base as u64);
                fnv_fold(&mut h, f.ret_dst.map(|r| r.index() as u64 + 1).unwrap_or(0));
            }
        }
        let mut lock_ids: Vec<i64> = self.locks.keys().copied().collect();
        lock_ids.sort_unstable();
        for id in lock_ids {
            let st = &self.locks[&id];
            fnv_fold(&mut h, id as u64);
            fnv_fold(&mut h, st.held_by.map(|t| t as u64 + 1).unwrap_or(0));
            fnv_fold(&mut h, st.release_clock.map(|c| c + 1).unwrap_or(0));
        }
        let mut bar_ids: Vec<u32> = self.barriers.keys().copied().collect();
        bar_ids.sort_unstable();
        for id in bar_ids {
            fnv_fold(&mut h, id as u64);
            for &a in &self.barriers[&id].arrivals {
                fnv_fold(&mut h, a as u64);
            }
        }
        match &self.san {
            Some(s) => {
                fnv_fold(&mut h, 1);
                fnv_fold(&mut h, s.digest());
            }
            None => fnv_fold(&mut h, 0),
        }
        h
    }
}

/// Structural fingerprint binding a checkpoint to what it may resume on:
/// the execution mode (with parameters), jitter model, memory geometry,
/// cost-relevant config, thread count, and the module shape. Two shards
/// that compiled the same plan-cache entry agree on all of these.
fn config_fingerprint(cfg: &MachineConfig, module: &Module, n_threads: usize) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let (mode_tag, a, b, c) = match cfg.mode {
        ExecMode::Baseline => (0u64, 0u64, 0u64, 0u64),
        ExecMode::ClocksOnly => (1, 0, 0, 0),
        ExecMode::Det => (2, 0, 0, 0),
        ExecMode::Kendo(kp) => (3, kp.chunk_size, kp.interrupt_cost, 0),
        ExecMode::Replay => (4, 0, 0, 0),
        ExecMode::BulkSync(bp) => (5, bp.quantum, bp.commit_base, bp.commit_per_store),
    };
    for v in [mode_tag, a, b, c] {
        fnv_fold(&mut h, v);
    }
    fnv_fold(&mut h, cfg.jitter.seed);
    fnv_fold(&mut h, cfg.jitter.prob_num as u64);
    fnv_fold(&mut h, cfg.jitter.prob_den as u64);
    fnv_fold(&mut h, cfg.jitter.max_extra);
    fnv_fold(&mut h, cfg.mem_words as u64);
    fnv_fold(&mut h, cfg.det_event_cost);
    fnv_fold(&mut h, cfg.lock_order_limit as u64);
    fnv_fold(&mut h, n_threads as u64);
    fnv_fold(&mut h, cfg.sanitize as u64);
    fnv_fold(&mut h, cfg.replay_log.len() as u64);
    fnv_fold(&mut h, module.functions.len() as u64);
    for f in &module.functions {
        fnv_fold(&mut h, f.blocks.len() as u64);
        fnv_fold(&mut h, f.num_regs as u64);
        let insts: usize = f.blocks.iter().map(|b| b.insts.len()).sum();
        fnv_fold(&mut h, insts as u64);
    }
    h
}

/// Per-checkpoint control returned by the sink passed to
/// [`Machine::run_with_checkpoints`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptControl {
    /// Keep running.
    Continue,
    /// Stop now; the run returns [`RunOutcome::Aborted`]. The sink has
    /// already received the checkpoint at the abort point, so the caller
    /// can resume later from exactly here.
    Abort,
}

/// Result of a checkpointed run.
pub enum RunOutcome {
    /// The program ran to completion (or hit the cycle limit).
    Finished {
        /// Whole-run metrics (identical to an uncheckpointed run).
        metrics: RunMetrics,
        /// Final shared memory image.
        memory: Vec<i64>,
        /// True when the cycle limit stopped the run.
        hit_limit: bool,
        /// Finalized sanitizer report, present iff
        /// [`MachineConfig::sanitize`] was set.
        sanitizer: Option<SanitizerReport>,
    },
    /// The sink aborted the run at a checkpoint boundary.
    Aborted {
        /// The cycle at which the run stopped (equal to the cycle of the
        /// last checkpoint handed to the sink).
        at_cycle: u64,
    },
}

enum Action {
    None,
    /// A tick skipped in a mode that does not execute ticks: the
    /// uninstrumented binary never contained it, so it must not consume a
    /// cycle either — the stepper immediately retries the next instruction.
    Free,
    Lock(i64),
    Unlock(i64),
    Barrier(u32),
    Exited,
}

/// The simulator. Build with [`Machine::new`], run with [`Machine::run`].
pub struct Machine<'m> {
    module: &'m Module,
    cost: &'m CostModel,
    cfg: MachineConfig,
    threads: Vec<Thread>,
    mem: Vec<i64>,
    locks: HashMap<i64, LockState>,
    barriers: HashMap<u32, BarrierState>,
    hasher: OrderHasher,
    lock_order: Vec<(i64, u32)>,
    cycle: u64,
    done_count: usize,
    replay_pos: usize,
    /// Bulk-sync: remaining commit-phase stall cycles.
    commit_stall: u64,
    /// Happens-before sanitizer (`None` unless `cfg.sanitize`): the
    /// disabled path costs exactly one null check per hook site.
    san: Option<Box<Sanitizer>>,
}

impl<'m> Machine<'m> {
    /// Create a machine over `module` with one core per thread spec.
    pub fn new(
        module: &'m Module,
        cost: &'m CostModel,
        threads: &[ThreadSpec],
        cfg: MachineConfig,
    ) -> Machine<'m> {
        assert!(!threads.is_empty(), "need at least one thread");
        let mem = vec![0i64; cfg.mem_words.max(1)];
        let threads: Vec<Thread> = threads
            .iter()
            .enumerate()
            .map(|(tid, spec)| {
                let func = &module.functions[spec.func.index()];
                assert!(
                    spec.args.len() == func.params as usize,
                    "thread {tid}: entry {} expects {} args, got {}",
                    func.name,
                    func.params,
                    spec.args.len()
                );
                let mut regs = vec![0i64; func.num_regs as usize];
                regs[..spec.args.len()].copy_from_slice(&spec.args);
                Thread {
                    status: Status::Ready,
                    frames: vec![Frame {
                        func: spec.func,
                        block: BlockId(0),
                        ip: 0,
                        reg_base: 0,
                        ret_dst: None,
                    }],
                    regs,
                    clock: 0,
                    pending: 0,
                    quantum_left: match cfg.mode {
                        ExecMode::BulkSync(p) => p.quantum,
                        _ => u64::MAX,
                    },
                    round_stores: 0,
                    rng: SmallRng::seed_from_u64(
                        cfg.jitter.seed ^ (tid as u64).wrapping_mul(0x9e3779b97f4a7c15),
                    ),
                    m: ThreadMetrics::default(),
                }
            })
            .collect();
        let san = cfg
            .sanitize
            .then(|| Box::new(Sanitizer::new(threads.len())));
        Machine {
            module,
            cost,
            cfg,
            threads,
            mem,
            locks: HashMap::new(),
            barriers: HashMap::new(),
            hasher: OrderHasher::new(),
            lock_order: Vec::new(),
            cycle: 0,
            done_count: 0,
            replay_pos: 0,
            commit_stall: 0,
            san,
        }
    }

    /// Run to completion (or the cycle limit). Returns metrics plus whether
    /// the limit was hit.
    pub fn run(self) -> (RunMetrics, bool) {
        let (metrics, _mem, hit) = self.run_with_memory();
        (metrics, hit)
    }

    /// Like [`Machine::run`], additionally returning the final shared
    /// memory — lets tests assert that deterministic runs converge to
    /// identical program *state*, not just identical lock orders.
    pub fn run_with_memory(self) -> (RunMetrics, Vec<i64>, bool) {
        let (metrics, mem, hit, _) = self.run_sanitized_inner();
        (metrics, mem, hit)
    }

    /// Like [`Machine::run_with_memory`], additionally returning the
    /// finalized [`SanitizerReport`] when [`MachineConfig::sanitize`] was
    /// set (`None` otherwise).
    pub fn run_sanitized(self) -> (RunMetrics, Vec<i64>, bool, Option<SanitizerReport>) {
        self.run_sanitized_inner()
    }

    fn run_sanitized_inner(mut self) -> (RunMetrics, Vec<i64>, bool, Option<SanitizerReport>) {
        let n = self.threads.len();
        while self.done_count < n && self.cycle < self.cfg.max_cycles {
            self.round();
        }
        self.into_results()
    }

    /// Run with a checkpoint sink: every `every` cycles (a round boundary
    /// of the arbiter loop — the snapshot is a pure read between rounds, so
    /// placement cannot perturb the schedule) the sink receives a
    /// [`Checkpoint`] and decides whether to continue or abort. `every = 0`
    /// disables checkpointing entirely. On a machine built by
    /// [`Machine::resume`], the first sink call happens one full interval
    /// *after* the resume point, not at it.
    pub fn run_with_checkpoints(
        mut self,
        every: u64,
        sink: &mut dyn FnMut(&Checkpoint) -> CkptControl,
    ) -> RunOutcome {
        let n = self.threads.len();
        let resumed_at = self.cycle;
        while self.done_count < n && self.cycle < self.cfg.max_cycles {
            if every > 0 && self.cycle.is_multiple_of(every) && self.cycle != resumed_at {
                let ckpt = self.snapshot();
                if sink(&ckpt) == CkptControl::Abort {
                    return RunOutcome::Aborted {
                        at_cycle: self.cycle,
                    };
                }
            }
            self.round();
        }
        let (metrics, memory, hit_limit, sanitizer) = self.into_results();
        RunOutcome::Finished {
            metrics,
            memory,
            hit_limit,
            sanitizer,
        }
    }

    /// One round of the main loop: commit-stall / serial-phase handling in
    /// bulk-sync mode, otherwise one arbiter turn stepping every thread.
    /// Advances `self.cycle` by exactly 1.
    fn round(&mut self) {
        let n = self.threads.len();
        if let Some(bp) = self.cfg.mode.bulk_sync() {
            if self.commit_stall > 0 {
                // Commit phase: every thread stalls.
                self.commit_stall -= 1;
                for th in self.threads.iter_mut() {
                    if th.status != Status::Done {
                        th.m.wait_cycles += 1;
                    }
                }
                self.cycle += 1;
                return;
            }
            if self.bulk_round_complete() {
                self.bulk_serial_phase(bp);
                self.cycle += 1;
                return;
            }
        }
        let turn = self.compute_turn();
        // Rotate the service order so baseline FCFS has no fixed
        // lowest-tid bias; in deterministic modes only the turn holder
        // acts on sync events, so rotation is inert there.
        let start = ((self
            .cycle
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(self.cfg.jitter.seed))
            % n as u64) as usize;
        for k in 0..n {
            let t = (start + k) % n;
            self.step(t, turn);
        }
        self.cycle += 1;
    }

    fn into_results(self) -> (RunMetrics, Vec<i64>, bool, Option<SanitizerReport>) {
        let hit_limit = self.done_count < self.threads.len();
        let sanitizer = self.san.map(|s| s.finalize(self.module));
        let metrics = RunMetrics {
            cycles: self.cycle,
            per_thread: self.threads.into_iter().map(|t| t.m).collect(),
            lock_order_hash: self.hasher.value(),
            lock_order: self.lock_order,
            ghz: self.cfg.ghz,
        };
        (metrics, self.mem, hit_limit, sanitizer)
    }

    /// Take a [`Checkpoint`] of the current state (a pure read).
    pub fn snapshot(&self) -> Checkpoint {
        Checkpoint {
            fingerprint: config_fingerprint(&self.cfg, self.module, self.threads.len()),
            cycle: self.cycle,
            threads: self.threads.clone(),
            mem: self.mem.clone(),
            locks: self.locks.clone(),
            barriers: self.barriers.clone(),
            hasher: self.hasher.clone(),
            lock_order: self.lock_order.clone(),
            done_count: self.done_count,
            replay_pos: self.replay_pos,
            commit_stall: self.commit_stall,
            san: self.san.clone(),
        }
    }

    /// Rebuild a machine from a checkpoint, continuing exactly where the
    /// snapshot was taken. `module`, `cost`, and `cfg` must match what the
    /// checkpoint was taken under — the structural fingerprint is checked
    /// and a mismatch is refused rather than allowed to silently diverge.
    /// The caller is responsible for passing the *same* compiled module
    /// (byte-identical compiles, e.g. from a shared plan cache, qualify).
    pub fn resume(
        module: &'m Module,
        cost: &'m CostModel,
        cfg: MachineConfig,
        ckpt: &Checkpoint,
    ) -> Result<Machine<'m>, String> {
        let fp = config_fingerprint(&cfg, module, ckpt.threads.len());
        if fp != ckpt.fingerprint {
            return Err(format!(
                "checkpoint fingerprint mismatch: checkpoint 0x{:016x} vs machine 0x{:016x} \
                 (different module, config, or thread count)",
                ckpt.fingerprint, fp
            ));
        }
        Ok(Machine {
            module,
            cost,
            cfg,
            threads: ckpt.threads.clone(),
            mem: ckpt.mem.clone(),
            locks: ckpt.locks.clone(),
            barriers: ckpt.barriers.clone(),
            hasher: ckpt.hasher.clone(),
            lock_order: ckpt.lock_order.clone(),
            cycle: ckpt.cycle,
            done_count: ckpt.done_count,
            replay_pos: ckpt.replay_pos,
            commit_stall: ckpt.commit_stall,
            san: ckpt.san.clone(),
        })
    }

    /// The thread currently holding the deterministic turn: minimum
    /// `(clock, tid)` among threads participating in arbitration.
    fn compute_turn(&self) -> Option<u32> {
        let mut best: Option<(u64, u32)> = None;
        for (tid, th) in self.threads.iter().enumerate() {
            let participates = matches!(
                th.status,
                Status::Ready
                    | Status::AcquiringLock(_)
                    | Status::AcquiringBarrier(_)
                    | Status::ExitWait
            );
            if !participates {
                continue;
            }
            let key = (th.clock, tid as u32);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        best.map(|(_, tid)| tid)
    }

    fn step(&mut self, t: usize, turn: Option<u32>) {
        let det = self.cfg.mode.deterministic();
        let tid = t as u32;
        match self.threads[t].status {
            Status::Done => {}
            Status::InBarrier(_) => {
                self.threads[t].m.wait_cycles += 1;
            }
            Status::QuantumDone => {
                self.threads[t].m.wait_cycles += 1;
            }
            Status::ExitWait => {
                if self.cfg.mode.bulk_sync().is_some() {
                    // Exits resolve in the serial phase.
                    self.threads[t].m.wait_cycles += 1;
                } else if !det || turn == Some(tid) {
                    self.finish(t);
                } else {
                    self.threads[t].m.wait_cycles += 1;
                }
            }
            Status::AcquiringBarrier(id) => {
                if self.cfg.mode.bulk_sync().is_some() {
                    self.threads[t].m.wait_cycles += 1;
                } else if !det || turn == Some(tid) {
                    self.arrive_barrier(t, id);
                } else {
                    self.threads[t].m.wait_cycles += 1;
                }
            }
            Status::AcquiringLock(id) => {
                if self.cfg.mode.bulk_sync().is_some() {
                    // Grants happen only in the serial phase.
                    self.threads[t].m.wait_cycles += 1;
                } else if det {
                    if turn == Some(tid) {
                        let (held_by, release_clock) = {
                            let st = self.locks.entry(id).or_default();
                            (st.held_by, st.release_clock)
                        };
                        let clock = self.threads[t].clock;
                        let logically_free =
                            held_by.is_none() && release_clock.is_none_or(|r| r < clock);
                        if logically_free {
                            self.grant_lock(t, id);
                        } else {
                            // Deterministic clock bump and retry (Kendo).
                            self.threads[t].clock += 1;
                            self.threads[t].m.lock_clock_bumps += 1;
                            self.threads[t].m.wait_cycles += 1;
                        }
                    } else {
                        self.threads[t].m.wait_cycles += 1;
                    }
                } else if self.cfg.mode.replayed() {
                    // Grant only when the log names this thread next for
                    // this lock (and the lock is physically free).
                    let held = self.locks.entry(id).or_default().held_by;
                    let next = self.cfg.replay_log.get(self.replay_pos).copied();
                    if held.is_none() && next == Some((id, tid)) {
                        self.replay_pos += 1;
                        self.grant_lock(t, id);
                    } else {
                        self.threads[t].m.wait_cycles += 1;
                    }
                } else {
                    let held = self.locks.entry(id).or_default().held_by;
                    if held.is_none() {
                        self.grant_lock(t, id);
                    } else {
                        self.threads[t].m.wait_cycles += 1;
                    }
                }
            }
            Status::Ready => {
                // Bulk-sync quanta are counted in *instructions* (as in
                // CoreDet), not cycles: jitter must not change which
                // instructions land in a round, or determinism is lost.
                if self.cfg.mode.bulk_sync().is_some() && self.threads[t].quantum_left == 0 {
                    self.threads[t].status = Status::QuantumDone;
                    self.threads[t].m.wait_cycles += 1;
                    return;
                }
                if self.threads[t].pending > 0 {
                    self.threads[t].pending -= 1;
                    self.threads[t].m.busy_cycles += 1;
                    return;
                }
                if self.cfg.mode.bulk_sync().is_some() {
                    self.threads[t].quantum_left -= 1;
                }
                let mut action = self.exec_next(t);
                // Skipped ticks are free: retry until a real instruction
                // issues this cycle.
                while matches!(action, Action::Free) {
                    action = self.exec_next(t);
                }
                match action {
                    Action::None | Action::Free => {}
                    Action::Lock(id) => {
                        self.threads[t].status = Status::AcquiringLock(id);
                    }
                    Action::Unlock(id) => {
                        let clock = self.threads[t].clock;
                        let st = self.locks.entry(id).or_default();
                        st.held_by = None;
                        st.release_clock = Some(clock);
                        if det {
                            self.threads[t].clock += 1;
                        }
                        if let Some(san) = self.san.as_deref_mut() {
                            san.release(tid, id);
                        }
                        self.charge(t, self.cost.sync);
                    }
                    Action::Barrier(id) => {
                        self.threads[t].status = Status::AcquiringBarrier(id);
                    }
                    Action::Exited => {
                        self.threads[t].status = Status::ExitWait;
                        // Baseline exits resolve immediately next step; in
                        // deterministic modes the exit is a det event.
                    }
                }
            }
        }
    }

    /// Bulk-sync: is every live thread parked at the round barrier (quantum
    /// exhausted, pending sync op, exiting) or inside an application
    /// barrier?
    fn bulk_round_complete(&self) -> bool {
        let mut any_parked = false;
        for th in &self.threads {
            match th.status {
                Status::Done | Status::InBarrier(_) => {}
                Status::QuantumDone
                | Status::AcquiringLock(_)
                | Status::AcquiringBarrier(_)
                | Status::ExitWait => any_parked = true,
                Status::Ready => return false,
            }
        }
        any_parked
    }

    /// Bulk-sync serial phase: commit the round's store buffers (a stall
    /// charged to everyone) and run pending synchronization operations in
    /// thread-id order — CoreDet's deterministic serial mode.
    fn bulk_serial_phase(&mut self, bp: BulkSyncParams) {
        let total_stores: u64 = self.threads.iter().map(|t| t.round_stores).sum();
        self.commit_stall = bp.commit_base + bp.commit_per_store * total_stores;
        for t in 0..self.threads.len() {
            match self.threads[t].status {
                Status::AcquiringLock(id) => {
                    let held = self.locks.entry(id).or_default().held_by;
                    if held.is_none() {
                        self.grant_lock(t, id);
                    }
                }
                Status::AcquiringBarrier(id) => {
                    self.arrive_barrier(t, id);
                }
                Status::ExitWait => {
                    self.finish(t);
                }
                _ => {}
            }
        }
        for th in self.threads.iter_mut() {
            th.round_stores = 0;
            th.quantum_left = bp.quantum;
            if th.status == Status::QuantumDone {
                th.status = Status::Ready;
            }
        }
    }

    fn grant_lock(&mut self, t: usize, id: i64) {
        let tid = t as u32;
        {
            let st = self.locks.entry(id).or_default();
            st.held_by = Some(tid);
        }
        if self.san.is_some() {
            // The frame's ip already points past the Lock instruction the
            // thread blocked on.
            let site = {
                let fr = self.threads[t].frames.last().unwrap();
                (
                    fr.func.index() as u32,
                    fr.block.index() as u32,
                    fr.ip.saturating_sub(1) as u32,
                )
            };
            if let Some(san) = self.san.as_deref_mut() {
                san.acquire(tid, id, site);
            }
        }
        if self.cfg.mode.deterministic() {
            self.threads[t].clock += 1;
        }
        self.threads[t].m.lock_acquires += 1;
        self.threads[t].status = Status::Ready;
        let protocol = if self.cfg.mode.deterministic() {
            self.cfg.det_event_cost
        } else {
            0
        };
        self.charge(t, self.cost.sync + protocol);
        self.hasher.record(id, tid);
        if self.lock_order.len() < self.cfg.lock_order_limit {
            self.lock_order.push((id, tid));
        }
    }

    fn arrive_barrier(&mut self, t: usize, id: u32) {
        let tid = t as u32;
        self.threads[t].m.barrier_waits += 1;
        self.threads[t].status = Status::InBarrier(id);
        let bar = self.barriers.entry(id).or_default();
        bar.arrivals.push(tid);
        let everyone = self.threads.len() - self.done_count;
        if bar.arrivals.len() >= everyone {
            // Release: reconcile clocks to max+1 in deterministic modes.
            let arrivals = std::mem::take(&mut self.barriers.get_mut(&id).unwrap().arrivals);
            if let Some(san) = self.san.as_deref_mut() {
                san.barrier(&arrivals);
            }
            let new_clock = arrivals
                .iter()
                .map(|&a| self.threads[a as usize].clock)
                .max()
                .unwrap_or(0)
                + 1;
            let det = self.cfg.mode.deterministic();
            for a in arrivals {
                let th = &mut self.threads[a as usize];
                th.status = Status::Ready;
                if det {
                    th.clock = new_clock;
                }
                th.pending = self.cost.sync;
            }
        }
    }

    fn finish(&mut self, t: usize) {
        self.threads[t].status = Status::Done;
        self.threads[t].m.finish_cycle = self.cycle;
        self.threads[t].m.final_clock = self.threads[t].clock;
        self.done_count += 1;
    }

    /// Charge `cost` cycles for the instruction just applied (1 cycle is
    /// consumed now; the remainder plus jitter occupies subsequent cycles).
    fn charge(&mut self, t: usize, cost: u64) {
        let th = &mut self.threads[t];
        let extra = if self.cfg.jitter.prob_den > 0
            && th.rng.gen_range(0..self.cfg.jitter.prob_den as u64)
                < self.cfg.jitter.prob_num as u64
        {
            1 + th.rng.gen_range(0..self.cfg.jitter.max_extra.max(1))
        } else {
            0
        };
        th.pending = cost.saturating_sub(1) + extra;
        th.m.busy_cycles += 1;
    }

    #[inline]
    fn reg(&self, t: usize, r: Reg) -> i64 {
        let th = &self.threads[t];
        th.regs[th.frames.last().unwrap().reg_base + r.index()]
    }

    #[inline]
    fn set_reg(&mut self, t: usize, r: Reg, v: i64) {
        let th = &mut self.threads[t];
        let base = th.frames.last().unwrap().reg_base;
        th.regs[base + r.index()] = v;
    }

    #[inline]
    fn operand(&self, t: usize, o: Operand) -> i64 {
        match o {
            Operand::Reg(r) => self.reg(t, r),
            Operand::Imm(v) => v,
        }
    }

    #[inline]
    fn mem_index(&self, addr: i64) -> usize {
        (addr.rem_euclid(self.mem.len() as i64)) as usize
    }

    /// Sanitizer memory hook: record the access at the instruction site
    /// `frame` points at. A no-op (one null check) when sanitizing is off.
    #[inline]
    fn san_access(&mut self, t: usize, word: usize, write: bool, frame: &Frame) {
        if let Some(san) = self.san.as_deref_mut() {
            san.access(
                t as u32,
                word,
                write,
                (
                    frame.func.index() as u32,
                    frame.block.index() as u32,
                    frame.ip as u32,
                ),
            );
        }
    }

    fn retired_store(&mut self, t: usize, count: u64) {
        let th = &mut self.threads[t];
        let before = th.m.retired_stores;
        th.m.retired_stores += count;
        th.round_stores += count;
        if let ExecMode::Kendo(kp) = self.cfg.mode {
            // The virtualized performance counter only surfaces at overflow
            // interrupts: the clock advances in chunk_size units, and each
            // interrupt costs cycles.
            let chunks = th.m.retired_stores / kp.chunk_size - before / kp.chunk_size;
            if chunks > 0 {
                th.clock += chunks * kp.chunk_size;
                th.pending += chunks * kp.interrupt_cost;
            }
        }
    }

    /// Fetch, apply, and charge the next instruction (or terminator) of
    /// thread `t`. Returns the synchronization action, if any.
    fn exec_next(&mut self, t: usize) -> Action {
        let frame = self.threads[t].frames.last().unwrap().clone();
        let func = &self.module.functions[frame.func.index()];
        let block = &func.blocks[frame.block.index()];

        if frame.ip >= block.insts.len() {
            // Terminator.
            self.threads[t].m.instructions += 1;
            let term = &block.term;
            self.charge(t, self.cost.alu);
            match term {
                Terminator::Br { target } => {
                    let f = self.threads[t].frames.last_mut().unwrap();
                    f.block = *target;
                    f.ip = 0;
                }
                Terminator::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = self.reg(t, *cond);
                    let f = self.threads[t].frames.last_mut().unwrap();
                    f.block = if c != 0 { *then_bb } else { *else_bb };
                    f.ip = 0;
                }
                Terminator::Switch {
                    disc,
                    cases,
                    default,
                } => {
                    let d = self.reg(t, *disc);
                    let target = cases
                        .iter()
                        .find(|(v, _)| *v == d)
                        .map(|(_, b)| *b)
                        .unwrap_or(*default);
                    let f = self.threads[t].frames.last_mut().unwrap();
                    f.block = target;
                    f.ip = 0;
                }
                Terminator::Ret { value } => {
                    let v = value.map(|o| self.operand(t, o));
                    let th = &mut self.threads[t];
                    let popped = th.frames.pop().unwrap();
                    th.regs.truncate(popped.reg_base);
                    if th.frames.is_empty() {
                        return Action::Exited;
                    }
                    if let (Some(dst), Some(v)) = (popped.ret_dst, v) {
                        self.set_reg(t, dst, v);
                    }
                }
            }
            return Action::None;
        }

        let inst = &block.insts[frame.ip];
        // Advance ip first; sync instructions have already "issued".
        self.threads[t].frames.last_mut().unwrap().ip += 1;

        match inst {
            Inst::Const { dst, value } => {
                let (dst, value) = (*dst, *value);
                self.threads[t].m.instructions += 1;
                self.set_reg(t, dst, value);
                self.charge(t, self.cost.alu);
            }
            Inst::Mov { dst, src } => {
                let (dst, src) = (*dst, *src);
                self.threads[t].m.instructions += 1;
                let v = self.operand(t, src);
                self.set_reg(t, dst, v);
                self.charge(t, self.cost.alu);
            }
            Inst::Bin { op, dst, lhs, rhs } => {
                let (op, dst, lhs, rhs) = (*op, *dst, *lhs, *rhs);
                self.threads[t].m.instructions += 1;
                let a = self.reg(t, lhs);
                let b = self.operand(t, rhs);
                self.set_reg(t, dst, op.apply(a, b));
                let c = match op {
                    detlock_ir::BinOp::Mul => self.cost.mul,
                    detlock_ir::BinOp::Div | detlock_ir::BinOp::Rem => self.cost.div,
                    _ => self.cost.alu,
                };
                self.charge(t, c);
            }
            Inst::Cmp { op, dst, lhs, rhs } => {
                let (op, dst, lhs, rhs) = (*op, *dst, *lhs, *rhs);
                self.threads[t].m.instructions += 1;
                let a = self.reg(t, lhs);
                let b = self.operand(t, rhs);
                self.set_reg(t, dst, op.apply(a, b));
                self.charge(t, self.cost.alu);
            }
            Inst::Load { dst, addr, offset } => {
                let (dst, addr, offset) = (*dst, *addr, *offset);
                self.threads[t].m.instructions += 1;
                let a = self.reg(t, addr).wrapping_add(offset);
                let idx = self.mem_index(a);
                let v = self.mem[idx];
                self.san_access(t, idx, false, &frame);
                self.set_reg(t, dst, v);
                self.charge(t, self.cost.load);
            }
            Inst::Store { src, addr, offset } => {
                let (src, addr, offset) = (*src, *addr, *offset);
                self.threads[t].m.instructions += 1;
                let a = self.reg(t, addr).wrapping_add(offset);
                let v = self.operand(t, src);
                let idx = self.mem_index(a);
                self.mem[idx] = v;
                self.san_access(t, idx, true, &frame);
                self.charge(t, self.cost.store);
                self.retired_store(t, 1);
            }
            Inst::Call { func, args, dst } => {
                let callee_id = *func;
                let dst = *dst;
                self.threads[t].m.instructions += 1;
                let argv: Vec<i64> = args.iter().map(|&a| self.operand(t, a)).collect();
                let callee = &self.module.functions[callee_id.index()];
                let th = &mut self.threads[t];
                let reg_base = th.regs.len();
                th.regs.resize(reg_base + callee.num_regs as usize, 0);
                th.regs[reg_base..reg_base + argv.len()].copy_from_slice(&argv);
                th.frames.push(Frame {
                    func: callee_id,
                    block: BlockId(0),
                    ip: 0,
                    reg_base,
                    ret_dst: dst,
                });
                self.charge(t, self.cost.call);
            }
            Inst::CallBuiltin {
                builtin,
                args,
                dst,
                size_arg,
            } => {
                let builtin = *builtin;
                let dst = *dst;
                let size_arg = *size_arg;
                self.threads[t].m.instructions += 1;
                let argv: Vec<i64> = args.iter().map(|&a| self.operand(t, a)).collect();
                let est = self.cost.builtin(builtin);
                let size = size_arg.and_then(|i| argv.get(i).copied()).unwrap_or(0);
                let cycles = est.eval(size);
                use detlock_ir::Builtin as B;
                let result = match builtin {
                    B::Memset => {
                        let (base, val, len) = (
                            argv.first().copied().unwrap_or(0),
                            argv.get(1).copied().unwrap_or(0),
                            size.max(0),
                        );
                        for k in 0..len.min(self.mem.len() as i64) {
                            let idx = self.mem_index(base.wrapping_add(k));
                            self.mem[idx] = val;
                            self.san_access(t, idx, true, &frame);
                        }
                        self.retired_store(t, len.max(0) as u64);
                        0
                    }
                    B::Memcpy => {
                        let (d, s, len) = (
                            argv.first().copied().unwrap_or(0),
                            argv.get(1).copied().unwrap_or(0),
                            size.max(0),
                        );
                        for k in 0..len.min(self.mem.len() as i64) {
                            let si = self.mem_index(s.wrapping_add(k));
                            let di = self.mem_index(d.wrapping_add(k));
                            self.mem[di] = self.mem[si];
                            self.san_access(t, si, false, &frame);
                            self.san_access(t, di, true, &frame);
                        }
                        self.retired_store(t, len.max(0) as u64);
                        0
                    }
                    B::Sqrt => builtins::isqrt(argv.first().copied().unwrap_or(0)),
                    B::Sin => builtins::fixed_sin(argv.first().copied().unwrap_or(0)),
                    B::Cos => builtins::fixed_cos(argv.first().copied().unwrap_or(0)),
                    B::Exp => builtins::fixed_exp(argv.first().copied().unwrap_or(0)),
                    B::Log => builtins::ilog2(argv.first().copied().unwrap_or(0)),
                    B::Rand => builtins::xorshift64(argv.first().copied().unwrap_or(0)),
                };
                if let Some(d) = dst {
                    self.set_reg(t, d, result);
                }
                self.charge(t, cycles.max(1));
            }
            Inst::Tick { amount } => {
                let amount = *amount;
                if self.cfg.mode.executes_ticks() {
                    self.threads[t].m.instructions += 1;
                    self.threads[t].m.ticks_executed += 1;
                    self.threads[t].clock += amount;
                    self.charge(t, self.cost.tick);
                } else {
                    // Baseline / Kendo: the binary was never instrumented —
                    // skip at zero cost and zero cycles.
                    return Action::Free;
                }
            }
            Inst::TickDyn {
                base,
                per_unit,
                size,
            } => {
                let (base, per_unit, size) = (*base, *per_unit, *size);
                if self.cfg.mode.executes_ticks() {
                    self.threads[t].m.instructions += 1;
                    self.threads[t].m.ticks_executed += 1;
                    let s = self.operand(t, size).max(0) as u64;
                    self.threads[t].clock += base + per_unit * s;
                    self.charge(t, self.cost.tick + self.cost.tick_dyn_extra);
                } else {
                    return Action::Free;
                }
            }
            Inst::Lock { id } => {
                let id = *id;
                self.threads[t].m.instructions += 1;
                let v = self.operand(t, id);
                return Action::Lock(v);
            }
            Inst::Unlock { id } => {
                let id = *id;
                self.threads[t].m.instructions += 1;
                let v = self.operand(t, id);
                return Action::Unlock(v);
            }
            Inst::Barrier { id } => {
                let id = *id;
                self.threads[t].m.instructions += 1;
                return Action::Barrier(id.0);
            }
        }
        Action::None
    }
}

/// Run a module on the simulator — the main entry point.
pub fn run(
    module: &Module,
    cost: &CostModel,
    threads: &[ThreadSpec],
    cfg: MachineConfig,
) -> (RunMetrics, bool) {
    Machine::new(module, cost, threads, cfg).run()
}
