//! # detlock-vm
//!
//! A deterministic cycle-level multicore simulator that executes
//! `detlock-ir` modules — the measurement substrate standing in for the
//! paper's 2.66 GHz quad-core testbed. One core per thread, one
//! instruction in flight per core, costs from `detlock-passes`'s
//! [`CostModel`](detlock_passes::cost::CostModel), seeded OS-noise jitter,
//! and four execution modes covering every configuration the paper
//! measures:
//!
//! | Mode | Ticks | Locks | Paper artifact |
//! |---|---|---|---|
//! | `Baseline` | skipped | FCFS (nondeterministic) | "Original Exec Time" |
//! | `ClocksOnly` | executed | FCFS | Table I upper half |
//! | `Det` | executed | deterministic scheduler on tick-driven clocks | Table I lower half |
//! | `Kendo` | skipped | deterministic scheduler, no tick clocks | Table II (with `Sched::Chunk`) |
//!
//! Deterministic modes arbitrate through a pluggable [`sched::DetScheduler`]
//! policy — [`sched::KendoSched`] (min-clock reference), [`sched::ChunkSched`]
//! (chunked store-counter clocks), or [`sched::DcBatchSched`]
//! (deterministic-consistency batch commits) — selected per
//! [`MachineConfig`] via `--scheduler` / `DETLOCK_SCHEDULER`.
//!
//! [`determinism::check_determinism`] verifies the weak-determinism
//! guarantee empirically by rerunning a workload across jitter seeds and
//! comparing lock-acquisition-order fingerprints.
//!
//! [`sanitizer`] is `detsan`: a FastTrack-style happens-before sanitizer
//! the machine drives on every memory and synchronization operation when
//! [`MachineConfig::sanitize`] is set, reporting precise races, deadlock-
//! prone lock-order cycles, and the minimal schedule log.

#![warn(missing_docs)]

pub mod backend;
pub mod builtins;
pub mod determinism;
pub mod lower;
pub mod machine;
pub mod metrics;
pub mod race;
pub mod replay;
pub mod sanitizer;
pub mod sched;

pub use backend::Backend;
pub use determinism::{check_determinism, DeterminismReport, Divergence};
pub use lower::ThreadedProgram;
pub use machine::{
    run, BulkSyncParams, Checkpoint, CkptControl, ExecMode, Jitter, KendoParams, Machine,
    MachineConfig, ResumeError, RunOutcome, ThreadSpec,
};
pub use metrics::{RunMetrics, ThreadMetrics};
pub use race::{confirm_race, RaceWitness};
pub use sanitizer::{
    DynAccess, DynRace, LockCycle, LockEdge, Sanitizer, SanitizerReport, SiteStat,
};
pub use sched::{ChunkParams, ChunkSched, DcBatchSched, DetScheduler, KendoSched, Sched};
