//! The threaded-code execution backend: compile the interpreter away.
//!
//! [`lower`] translates a verified (and typically instrumented) module once
//! into a [`ThreadedProgram`] — a flat pre-decoded program in which every
//! source instruction becomes exactly one [`Op`] with its operand slots
//! pre-resolved (register/immediate variants split at lowering time, so the
//! hot loop never matches on [`Operand`]), its cost-model charge baked in
//! where it depends on the opcode, callee register-file sizes and builtin
//! cost estimates copied inline, and jump targets kept as plain array
//! indices. Each function is one contiguous `ops` array: block `b` starts
//! at `starts[b]` and its terminator sits at `starts[b] + insts.len()`, so
//! fetching the next operation is a single add plus one bounds-checked
//! load — no per-step function/block/terminator re-derivation. Execution
//! additionally runs on disjoint field borrows of the determinism core
//! (thread, memory, sanitizer), skipping the repeated `threads[t]`
//! re-indexing the interpreter's method-per-access style pays. The DetLock
//! thesis applied to our own VM: pay for determinism machinery once, at
//! compile time.
//!
//! The lowering is *shape-preserving*: function, block, and instruction
//! indices are identical to the source module (the flat `pc` is internal —
//! frames still carry source-relative `(func, block, ip)` coordinates), so
//! call frames, sanitizer sites, and checkpoints mean the same thing under
//! both backends. Combined with charging the same costs in the same order
//! (the jitter RNG is positional), this makes every observable artifact —
//! trace hash, metrics, receipt, sanitizer report, checkpoint digest —
//! byte-identical to the interpreter's, which the differential golden
//! suite asserts exhaustively.
//!
//! Lowered programs are cached process-wide in a content-addressed
//! [`PlanCache`] keyed by the module's canonical IR text plus the
//! [`CostModel`] fingerprint, so repeat jobs and sibling `detserved`
//! shards dedup the lowering exactly as they dedup instrumentation plans.

use crate::machine::{
    charge_amount, charge_thread, mem_index_of, retire_stores, Action, DetCore, ExecBackend, Frame,
};
use crate::sched::ChunkParams;
use detlock_ir::dot::function_to_text;
use detlock_ir::inst::{BinOp, CmpOp, Inst, Operand, Terminator};
use detlock_ir::module::Module;
use detlock_ir::types::{BlockId, FuncId, Reg};
use detlock_ir::Builtin;
use detlock_passes::cache::{Fnv64, PlanCache};
use detlock_passes::cost::{CostModel, Estimate};
use std::sync::{Arc, OnceLock};

/// A pre-decoded operation. One [`Op`] per source [`Inst`] plus one per
/// [`Terminator`], in source order, so instruction pointers are
/// interchangeable between backends. Register/immediate operand variants
/// are split here so dispatch does the match once, at lowering time.
pub(crate) enum Op {
    Const {
        dst: Reg,
        value: i64,
    },
    MovR {
        dst: Reg,
        src: Reg,
    },
    MovI {
        dst: Reg,
        value: i64,
    },
    BinR {
        op: BinOp,
        dst: Reg,
        lhs: Reg,
        rhs: Reg,
        cost: u64,
    },
    BinI {
        op: BinOp,
        dst: Reg,
        lhs: Reg,
        imm: i64,
        cost: u64,
    },
    CmpR {
        op: CmpOp,
        dst: Reg,
        lhs: Reg,
        rhs: Reg,
    },
    CmpI {
        op: CmpOp,
        dst: Reg,
        lhs: Reg,
        imm: i64,
    },
    Load {
        dst: Reg,
        addr: Reg,
        offset: i64,
    },
    StoreR {
        src: Reg,
        addr: Reg,
        offset: i64,
    },
    StoreI {
        value: i64,
        addr: Reg,
        offset: i64,
    },
    Call {
        func: FuncId,
        /// The callee's register-file size, copied at lowering so the call
        /// never touches the module.
        num_regs: u32,
        args: Box<[Operand]>,
        dst: Option<Reg>,
    },
    CallBuiltin {
        builtin: Builtin,
        args: Box<[Operand]>,
        dst: Option<Reg>,
        size_arg: Option<usize>,
        /// The builtin's cost estimate, copied from the [`CostModel`].
        est: Estimate,
    },
    Tick {
        amount: u64,
    },
    TickDyn {
        base: u64,
        per_unit: u64,
        size: Operand,
    },
    LockR(Reg),
    LockI(i64),
    UnlockR(Reg),
    UnlockI(i64),
    Barrier(u32),
    // Terminators, stored inline at the end of each block's op range.
    Br {
        target: BlockId,
    },
    CondBr {
        cond: Reg,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    Switch {
        disc: Reg,
        cases: Box<[(i64, BlockId)]>,
        default: BlockId,
    },
    RetR(Reg),
    RetI(i64),
    RetVoid,
}

/// Static fusion info for the run of operations starting at one flat `pc`
/// (see [`ThreadedBackend::exec_next`]'s fused path): `len` operations can
/// be dispatched in one step, and `cost_sum` bounds their combined charge.
/// `len == 1` means "no fusion here" — the single-op path runs.
#[derive(Clone, Copy)]
pub(crate) struct Fuse {
    pub(crate) len: u8,
    pub(crate) cost_sum: u32,
}

/// Cap on fused-run length: bounds the schedule-divergence window the
/// checkpoint/limit gate has to reason about, and keeps `cost_sum` small.
const FUSE_MAX: usize = 16;

/// A lowered function: every block's instructions plus its terminator,
/// flattened into one array. Block `b` occupies `starts[b] ..=
/// starts[b] + insts_len`, the last slot being the terminator, so the
/// executor's fetch is `ops[starts[block] + ip]` — `ip` stays
/// source-relative (shape preservation) while the fetch is flat.
/// `fuse[pc]` describes the statically fusible run starting at each op.
pub(crate) struct LFunc {
    pub(crate) ops: Vec<Op>,
    pub(crate) starts: Vec<u32>,
    pub(crate) fuse: Vec<Fuse>,
}

/// A module lowered to threaded code: same function/block/instruction
/// indexing as the source [`Module`], fully self-contained (no borrows),
/// shared between machines via `Arc`.
pub struct ThreadedProgram {
    pub(crate) funcs: Vec<LFunc>,
}

/// Lower `module` against `cost` into a [`ThreadedProgram`]. Pure: the
/// output is a function of exactly the inputs [`lower_key`] digests.
pub fn lower(module: &Module, cost: &CostModel) -> ThreadedProgram {
    let funcs = module
        .functions
        .iter()
        .map(|f| {
            let mut ops = Vec::with_capacity(f.blocks.iter().map(|b| b.insts.len() + 1).sum());
            let mut starts = Vec::with_capacity(f.blocks.len());
            let mut block_ends = Vec::with_capacity(f.blocks.len());
            for b in &f.blocks {
                starts.push(ops.len() as u32);
                ops.extend(b.insts.iter().map(|i| lower_inst(module, cost, i)));
                ops.push(lower_term(&b.term));
                block_ends.push(ops.len());
            }
            let fuse = fuse_table(&ops, &starts, &block_ends, cost);
            LFunc { ops, starts, fuse }
        })
        .collect();
    ThreadedProgram { funcs }
}

fn lower_inst(module: &Module, cost: &CostModel, inst: &Inst) -> Op {
    match inst {
        Inst::Const { dst, value } => Op::Const {
            dst: *dst,
            value: *value,
        },
        Inst::Mov { dst, src } => match src {
            Operand::Reg(r) => Op::MovR { dst: *dst, src: *r },
            Operand::Imm(v) => Op::MovI {
                dst: *dst,
                value: *v,
            },
        },
        Inst::Bin { op, dst, lhs, rhs } => {
            let c = match op {
                BinOp::Mul => cost.mul,
                BinOp::Div | BinOp::Rem => cost.div,
                _ => cost.alu,
            };
            match rhs {
                Operand::Reg(r) => Op::BinR {
                    op: *op,
                    dst: *dst,
                    lhs: *lhs,
                    rhs: *r,
                    cost: c,
                },
                Operand::Imm(v) => Op::BinI {
                    op: *op,
                    dst: *dst,
                    lhs: *lhs,
                    imm: *v,
                    cost: c,
                },
            }
        }
        Inst::Cmp { op, dst, lhs, rhs } => match rhs {
            Operand::Reg(r) => Op::CmpR {
                op: *op,
                dst: *dst,
                lhs: *lhs,
                rhs: *r,
            },
            Operand::Imm(v) => Op::CmpI {
                op: *op,
                dst: *dst,
                lhs: *lhs,
                imm: *v,
            },
        },
        Inst::Load { dst, addr, offset } => Op::Load {
            dst: *dst,
            addr: *addr,
            offset: *offset,
        },
        Inst::Store { src, addr, offset } => match src {
            Operand::Reg(r) => Op::StoreR {
                src: *r,
                addr: *addr,
                offset: *offset,
            },
            Operand::Imm(v) => Op::StoreI {
                value: *v,
                addr: *addr,
                offset: *offset,
            },
        },
        Inst::Call { func, args, dst } => Op::Call {
            func: *func,
            num_regs: module.functions[func.index()].num_regs,
            args: args.clone().into_boxed_slice(),
            dst: *dst,
        },
        Inst::CallBuiltin {
            builtin,
            args,
            dst,
            size_arg,
        } => Op::CallBuiltin {
            builtin: *builtin,
            args: args.clone().into_boxed_slice(),
            dst: *dst,
            size_arg: *size_arg,
            est: cost.builtin(*builtin),
        },
        Inst::Tick { amount } => Op::Tick { amount: *amount },
        Inst::TickDyn {
            base,
            per_unit,
            size,
        } => Op::TickDyn {
            base: *base,
            per_unit: *per_unit,
            size: *size,
        },
        Inst::Lock { id } => match id {
            Operand::Reg(r) => Op::LockR(*r),
            Operand::Imm(v) => Op::LockI(*v),
        },
        Inst::Unlock { id } => match id {
            Operand::Reg(r) => Op::UnlockR(*r),
            Operand::Imm(v) => Op::UnlockI(*v),
        },
        Inst::Barrier { id } => Op::Barrier(id.0),
    }
}

fn lower_term(term: &Terminator) -> Op {
    match term {
        Terminator::Br { target } => Op::Br { target: *target },
        Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        } => Op::CondBr {
            cond: *cond,
            then_bb: *then_bb,
            else_bb: *else_bb,
        },
        Terminator::Switch {
            disc,
            cases,
            default,
        } => Op::Switch {
            disc: *disc,
            cases: cases.clone().into_boxed_slice(),
            default: *default,
        },
        Terminator::Ret { value } => match value {
            Some(Operand::Reg(r)) => Op::RetR(*r),
            Some(Operand::Imm(v)) => Op::RetI(*v),
            None => Op::RetVoid,
        },
    }
}

/// Register-only operations: they touch nothing another thread (or the
/// sanitizer, or the arbiter) can observe, so executing them a few cycles
/// early inside a fused run is invisible — the combined countdown restores
/// the exact unfused timing before anything observable happens next.
fn is_pure(op: &Op) -> bool {
    matches!(
        op,
        Op::Const { .. }
            | Op::MovR { .. }
            | Op::MovI { .. }
            | Op::BinR { .. }
            | Op::BinI { .. }
            | Op::CmpR { .. }
            | Op::CmpI { .. }
    )
}

/// Operations that may *head* a fused run: the head executes at its natural
/// cycle (fusion only moves the ops *after* it), so one externally visible
/// op — a memory access (sanitizer event, store retirement) or a tick
/// (logical-clock bump the arbiter reads) — is allowed there and only
/// there.
fn is_head(op: &Op) -> bool {
    is_pure(op)
        || matches!(
            op,
            Op::Load { .. }
                | Op::StoreR { .. }
                | Op::StoreI { .. }
                | Op::Tick { .. }
                | Op::TickDyn { .. }
        )
}

/// Terminators a fused run may end with: pure frame-coordinate updates.
/// `Ret` is excluded — popping the last frame changes the thread's status
/// (an arbiter-visible event that must land on its natural cycle).
fn is_tail(op: &Op) -> bool {
    matches!(op, Op::Br { .. } | Op::CondBr { .. } | Op::Switch { .. })
}

/// The charge the single-op dispatch arms apply for `op` — used to bound a
/// fused run's combined countdown at lowering time.
fn fuse_cost(op: &Op, cost: &CostModel) -> u64 {
    match op {
        Op::BinR { cost: c, .. } | Op::BinI { cost: c, .. } => *c,
        Op::Load { .. } => cost.load,
        Op::StoreR { .. } | Op::StoreI { .. } => cost.store,
        Op::Tick { .. } => cost.tick,
        Op::TickDyn { .. } => cost.tick + cost.tick_dyn_extra,
        _ => cost.alu,
    }
}

/// Compute the per-`pc` fusion table: the maximal run starting at each op
/// that is one optional externally-visible head followed by register-only
/// ops, optionally closing with the block's branch terminator, capped at
/// [`FUSE_MAX`]. `cost_sum` saturates; the runtime gate treats a huge sum
/// as "never fits", which degrades to unfused execution — always correct.
fn fuse_table(ops: &[Op], starts: &[u32], block_ends: &[usize], cost: &CostModel) -> Vec<Fuse> {
    let mut fuse = vec![
        Fuse {
            len: 1,
            cost_sum: 0
        };
        ops.len()
    ];
    for (b, &end) in block_ends.iter().enumerate() {
        let start = starts[b] as usize;
        for j in start..end {
            if !is_head(&ops[j]) || j == end - 1 {
                continue;
            }
            let mut k = 1usize;
            let mut sum = fuse_cost(&ops[j], cost) as u128;
            let mut i = j + 1;
            while i < end - 1 && k < FUSE_MAX && is_pure(&ops[i]) {
                sum += fuse_cost(&ops[i], cost) as u128;
                k += 1;
                i += 1;
            }
            if i == end - 1 && k < FUSE_MAX && is_tail(&ops[i]) {
                sum += fuse_cost(&ops[i], cost) as u128;
                k += 1;
            }
            if k > 1 {
                fuse[j] = Fuse {
                    len: k as u8,
                    cost_sum: u32::try_from(sum).unwrap_or(u32::MAX),
                };
            }
        }
    }
    fuse
}

/// Content key for a lowering: the canonical IR text of every function (the
/// same serialization the instrumentation plan cache keys on) plus the cost
/// fingerprint — everything [`lower`]'s output is a pure function of.
pub fn lower_key(module: &Module, cost: &CostModel) -> u64 {
    let mut h = Fnv64::new();
    h.write(b"detlock-vm/lower"); // domain tag
    h.write_u64(module.functions.len() as u64);
    for func in &module.functions {
        h.write(function_to_text(func, |_| None).as_bytes());
        h.write(&[0xff]);
    }
    h.write_u64(cost.fingerprint());
    h.finish()
}

/// The process-wide lowering cache: sibling shards and repeat jobs over
/// the same compiled module share one [`ThreadedProgram`].
fn lower_cache() -> &'static PlanCache<ThreadedProgram> {
    static CACHE: OnceLock<PlanCache<ThreadedProgram>> = OnceLock::new();
    CACHE.get_or_init(|| PlanCache::with_capacity(512))
}

/// Fetch (or build and cache) the lowered program for `module` × `cost`.
pub fn lowered(module: &Module, cost: &CostModel) -> Arc<ThreadedProgram> {
    lower_cache().get_or_compute(lower_key(module, cost), || lower(module, cost))
}

/// The sanitizer site of the operation `frame` points at (the frame copy
/// is taken before `ip` advances, exactly as the interpreter does).
#[inline]
fn san_site(frame: &Frame) -> (u32, u32, u32) {
    (
        frame.func.index() as u32,
        frame.block.index() as u32,
        frame.ip as u32,
    )
}

/// Execute the fused run of `len` ops starting at `pc` in one dispatch.
///
/// Why this is invisible: only the head op can touch anything outside the
/// thread (memory + sanitizer, store retirement, or a tick's clock bump),
/// and it executes at its natural cycle. The register-only tail executes
/// "early", but registers and frame coordinates are thread-private, and
/// the combined countdown `Σ charge_i + (executed − 1)` makes the *next*
/// externally visible step land on exactly the cycle the unfused schedule
/// would reach it — with identical positional RNG draws, identical
/// per-cycle `busy_cycles` accrual (one here, the rest via the countdown),
/// and identical `pending` whenever another component can read it (the
/// caller's gate keeps checkpoint boundaries and the cycle limit outside
/// the divergence window; bulk-sync mode, which meters quanta per
/// instruction, never takes this path).
#[allow(clippy::too_many_arguments)]
#[inline]
fn run_fused(
    lf: &LFunc,
    pc: usize,
    len: usize,
    frame: Frame,
    th: &mut crate::machine::Thread,
    mem: &mut [i64],
    san: &mut Option<Box<crate::sanitizer::Sanitizer>>,
    cfg: &crate::machine::MachineConfig,
    cost: &CostModel,
    mem_mask: Option<u64>,
    chunk: Option<ChunkParams>,
    t: usize,
) -> Action {
    let base = frame.reg_base;
    let mut fr = frame;
    let mut pending_sum = 0u64;
    let mut executed = 0u64;
    for op in &lf.ops[pc..pc + len] {
        match op {
            Op::Const { dst, value } => {
                fr.ip += 1;
                th.m.instructions += 1;
                th.regs[base + dst.index()] = *value;
                pending_sum += charge_amount(th, &cfg.jitter, cost.alu);
                executed += 1;
            }
            Op::MovR { dst, src } => {
                fr.ip += 1;
                th.m.instructions += 1;
                th.regs[base + dst.index()] = th.regs[base + src.index()];
                pending_sum += charge_amount(th, &cfg.jitter, cost.alu);
                executed += 1;
            }
            Op::MovI { dst, value } => {
                fr.ip += 1;
                th.m.instructions += 1;
                th.regs[base + dst.index()] = *value;
                pending_sum += charge_amount(th, &cfg.jitter, cost.alu);
                executed += 1;
            }
            Op::BinR {
                op,
                dst,
                lhs,
                rhs,
                cost: c,
            } => {
                fr.ip += 1;
                th.m.instructions += 1;
                let a = th.regs[base + lhs.index()];
                let b = th.regs[base + rhs.index()];
                th.regs[base + dst.index()] = op.apply(a, b);
                pending_sum += charge_amount(th, &cfg.jitter, *c);
                executed += 1;
            }
            Op::BinI {
                op,
                dst,
                lhs,
                imm,
                cost: c,
            } => {
                fr.ip += 1;
                th.m.instructions += 1;
                let a = th.regs[base + lhs.index()];
                th.regs[base + dst.index()] = op.apply(a, *imm);
                pending_sum += charge_amount(th, &cfg.jitter, *c);
                executed += 1;
            }
            Op::CmpR { op, dst, lhs, rhs } => {
                fr.ip += 1;
                th.m.instructions += 1;
                let a = th.regs[base + lhs.index()];
                let b = th.regs[base + rhs.index()];
                th.regs[base + dst.index()] = op.apply(a, b);
                pending_sum += charge_amount(th, &cfg.jitter, cost.alu);
                executed += 1;
            }
            Op::CmpI { op, dst, lhs, imm } => {
                fr.ip += 1;
                th.m.instructions += 1;
                let a = th.regs[base + lhs.index()];
                th.regs[base + dst.index()] = op.apply(a, *imm);
                pending_sum += charge_amount(th, &cfg.jitter, cost.alu);
                executed += 1;
            }
            // Head-only ops below: `fuse_table` admits them at position 0
            // alone, so they run at their natural cycle and `frame` is
            // still the correct sanitizer site.
            Op::Load { dst, addr, offset } => {
                fr.ip += 1;
                th.m.instructions += 1;
                let a = th.regs[base + addr.index()].wrapping_add(*offset);
                let idx = mem_index_of(mem_mask, mem.len(), a);
                let v = mem[idx];
                if let Some(s) = san.as_deref_mut() {
                    s.access(t as u32, idx, false, san_site(&frame));
                }
                th.regs[base + dst.index()] = v;
                pending_sum += charge_amount(th, &cfg.jitter, cost.load);
                executed += 1;
            }
            Op::StoreR { src, addr, offset } => {
                fr.ip += 1;
                th.m.instructions += 1;
                let a = th.regs[base + addr.index()].wrapping_add(*offset);
                let v = th.regs[base + src.index()];
                let idx = mem_index_of(mem_mask, mem.len(), a);
                mem[idx] = v;
                if let Some(s) = san.as_deref_mut() {
                    s.access(t as u32, idx, true, san_site(&frame));
                }
                pending_sum += charge_amount(th, &cfg.jitter, cost.store);
                retire_stores(th, chunk, 1);
                executed += 1;
            }
            Op::StoreI {
                value,
                addr,
                offset,
            } => {
                fr.ip += 1;
                th.m.instructions += 1;
                let a = th.regs[base + addr.index()].wrapping_add(*offset);
                let idx = mem_index_of(mem_mask, mem.len(), a);
                mem[idx] = *value;
                if let Some(s) = san.as_deref_mut() {
                    s.access(t as u32, idx, true, san_site(&frame));
                }
                pending_sum += charge_amount(th, &cfg.jitter, cost.store);
                retire_stores(th, chunk, 1);
                executed += 1;
            }
            Op::Tick { amount } => {
                fr.ip += 1;
                if cfg.mode.executes_ticks() {
                    th.m.instructions += 1;
                    th.m.ticks_executed += 1;
                    th.clock += amount;
                    pending_sum += charge_amount(th, &cfg.jitter, cost.tick);
                    executed += 1;
                }
                // Else: free skip, zero accounting — same as the unfused
                // `Action::Free` retry, which lands on the next op within
                // the same step.
            }
            Op::TickDyn {
                base: tick_base,
                per_unit,
                size,
            } => {
                fr.ip += 1;
                if cfg.mode.executes_ticks() {
                    th.m.instructions += 1;
                    th.m.ticks_executed += 1;
                    let s = match *size {
                        Operand::Reg(r) => th.regs[base + r.index()],
                        Operand::Imm(v) => v,
                    }
                    .max(0) as u64;
                    th.clock += tick_base + per_unit * s;
                    pending_sum += charge_amount(th, &cfg.jitter, cost.tick + cost.tick_dyn_extra);
                    executed += 1;
                }
            }
            // Tail terminators: pure frame-coordinate updates.
            Op::Br { target } => {
                th.m.instructions += 1;
                pending_sum += charge_amount(th, &cfg.jitter, cost.alu);
                executed += 1;
                fr.block = *target;
                fr.ip = 0;
            }
            Op::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                th.m.instructions += 1;
                pending_sum += charge_amount(th, &cfg.jitter, cost.alu);
                executed += 1;
                let c = th.regs[base + cond.index()];
                fr.block = if c != 0 { *then_bb } else { *else_bb };
                fr.ip = 0;
            }
            Op::Switch {
                disc,
                cases,
                default,
            } => {
                th.m.instructions += 1;
                pending_sum += charge_amount(th, &cfg.jitter, cost.alu);
                executed += 1;
                let d = th.regs[base + disc.index()];
                fr.block = cases
                    .iter()
                    .find(|(v, _)| *v == d)
                    .map(|(_, b)| *b)
                    .unwrap_or(*default);
                fr.ip = 0;
            }
            _ => unreachable!("fuse_table admits only pure, head, and tail ops"),
        }
    }
    *th.frames.last_mut().unwrap() = fr;
    th.m.busy_cycles += 1;
    // `+=`, not `=`: a chunk-clock store retirement above may already have
    // deposited its interrupt countdown.
    th.pending += pending_sum + (executed - 1);
    Action::None
}

/// The threaded-code [`ExecBackend`]: dispatches over the pre-decoded
/// [`ThreadedProgram`] while driving the shared determinism core.
pub(crate) struct ThreadedBackend {
    prog: Arc<ThreadedProgram>,
}

impl ThreadedBackend {
    pub(crate) fn new(prog: Arc<ThreadedProgram>) -> ThreadedBackend {
        ThreadedBackend { prog }
    }

    /// The one op with cross-cutting state (the scratch argument buffer and
    /// the shared [`DetCore::apply_builtin`] semantics): executed on the
    /// whole core, outside the fast path's field borrows.
    fn exec_builtin(&self, core: &mut DetCore<'_>, t: usize) -> Action {
        let frame = *core.threads[t].frames.last().unwrap();
        let base = frame.reg_base;
        let lf = &self.prog.funcs[frame.func.index()];
        let Op::CallBuiltin {
            builtin,
            args,
            dst,
            size_arg,
            est,
        } = &lf.ops[lf.starts[frame.block.index()] as usize + frame.ip]
        else {
            unreachable!("the fast path handles every other op");
        };
        core.threads[t].frames.last_mut().unwrap().ip += 1;
        core.threads[t].m.instructions += 1;
        let mut argv = std::mem::take(&mut core.scratch_args);
        argv.clear();
        argv.extend(args.iter().map(|&a| core.operand_at(t, base, a)));
        let size = size_arg.and_then(|i| argv.get(i).copied()).unwrap_or(0);
        let cycles = est.eval(size);
        let result = core.apply_builtin(t, *builtin, &argv, size, frame);
        core.scratch_args = argv;
        if let Some(d) = dst {
            core.set_reg_at(t, base, *d, result);
        }
        core.charge(t, cycles.max(1));
        Action::None
    }
}

impl ExecBackend for ThreadedBackend {
    fn exec_next(&self, core: &mut DetCore<'_>, t: usize) -> Action {
        let prog = &*self.prog;
        // Fast path: one flat fetch, then direct work on disjoint field
        // borrows of the core — every metric increment, RNG draw, and
        // sanitizer site matches the interpreter's exactly (that contract
        // is what the differential suite pins down).
        {
            let DetCore {
                threads,
                mem,
                san,
                cfg,
                cost,
                mem_mask,
                cycle,
                ckpt_every,
                chunk,
                ..
            } = &mut *core;
            let cost = *cost;
            let mem_mask = *mem_mask;
            let cycle = *cycle;
            let ckpt_every = *ckpt_every;
            let chunk = *chunk;
            let th = &mut threads[t];
            let frame = *th.frames.last().unwrap();
            let base = frame.reg_base;
            let lf = &prog.funcs[frame.func.index()];
            let pc = lf.starts[frame.block.index()] as usize + frame.ip;
            // Fused dispatch: execute the whole statically-identified run in
            // one step when nothing can observe the difference — see
            // `run_fused` for the invisibility argument and the gate
            // conditions it depends on.
            let fuse = lf.fuse[pc];
            if fuse.len > 1 && cfg.mode.bulk_sync().is_none() {
                // Upper bound on the divergence window: every charge is at
                // most `cost + max_extra`, plus the chunk-clock
                // store-retirement interrupt the head may incur.
                let mut w =
                    fuse.cost_sum as u64 + fuse.len as u64 * (cfg.jitter.max_extra.max(1) + 1);
                if let Some(cp) = chunk {
                    w = w.saturating_add(cp.interrupt_cost);
                }
                let fits_limit = cycle.saturating_add(w) < cfg.max_cycles;
                let fits_ckpt = ckpt_every == 0 || cycle % ckpt_every + w < ckpt_every;
                if fits_limit && fits_ckpt {
                    return run_fused(
                        lf,
                        pc,
                        fuse.len as usize,
                        frame,
                        th,
                        mem,
                        san,
                        cfg,
                        cost,
                        mem_mask,
                        chunk,
                        t,
                    );
                }
            }
            match &lf.ops[pc] {
                Op::Const { dst, value } => {
                    th.frames.last_mut().unwrap().ip += 1;
                    th.m.instructions += 1;
                    th.regs[base + dst.index()] = *value;
                    charge_thread(th, &cfg.jitter, cost.alu);
                    return Action::None;
                }
                Op::MovR { dst, src } => {
                    th.frames.last_mut().unwrap().ip += 1;
                    th.m.instructions += 1;
                    th.regs[base + dst.index()] = th.regs[base + src.index()];
                    charge_thread(th, &cfg.jitter, cost.alu);
                    return Action::None;
                }
                Op::MovI { dst, value } => {
                    th.frames.last_mut().unwrap().ip += 1;
                    th.m.instructions += 1;
                    th.regs[base + dst.index()] = *value;
                    charge_thread(th, &cfg.jitter, cost.alu);
                    return Action::None;
                }
                Op::BinR {
                    op,
                    dst,
                    lhs,
                    rhs,
                    cost: c,
                } => {
                    th.frames.last_mut().unwrap().ip += 1;
                    th.m.instructions += 1;
                    let a = th.regs[base + lhs.index()];
                    let b = th.regs[base + rhs.index()];
                    th.regs[base + dst.index()] = op.apply(a, b);
                    charge_thread(th, &cfg.jitter, *c);
                    return Action::None;
                }
                Op::BinI {
                    op,
                    dst,
                    lhs,
                    imm,
                    cost: c,
                } => {
                    th.frames.last_mut().unwrap().ip += 1;
                    th.m.instructions += 1;
                    let a = th.regs[base + lhs.index()];
                    th.regs[base + dst.index()] = op.apply(a, *imm);
                    charge_thread(th, &cfg.jitter, *c);
                    return Action::None;
                }
                Op::CmpR { op, dst, lhs, rhs } => {
                    th.frames.last_mut().unwrap().ip += 1;
                    th.m.instructions += 1;
                    let a = th.regs[base + lhs.index()];
                    let b = th.regs[base + rhs.index()];
                    th.regs[base + dst.index()] = op.apply(a, b);
                    charge_thread(th, &cfg.jitter, cost.alu);
                    return Action::None;
                }
                Op::CmpI { op, dst, lhs, imm } => {
                    th.frames.last_mut().unwrap().ip += 1;
                    th.m.instructions += 1;
                    let a = th.regs[base + lhs.index()];
                    th.regs[base + dst.index()] = op.apply(a, *imm);
                    charge_thread(th, &cfg.jitter, cost.alu);
                    return Action::None;
                }
                Op::Load { dst, addr, offset } => {
                    th.frames.last_mut().unwrap().ip += 1;
                    th.m.instructions += 1;
                    let a = th.regs[base + addr.index()].wrapping_add(*offset);
                    let idx = mem_index_of(mem_mask, mem.len(), a);
                    let v = mem[idx];
                    if let Some(s) = san.as_deref_mut() {
                        s.access(t as u32, idx, false, san_site(&frame));
                    }
                    th.regs[base + dst.index()] = v;
                    charge_thread(th, &cfg.jitter, cost.load);
                    return Action::None;
                }
                Op::StoreR { src, addr, offset } => {
                    th.frames.last_mut().unwrap().ip += 1;
                    th.m.instructions += 1;
                    let a = th.regs[base + addr.index()].wrapping_add(*offset);
                    let v = th.regs[base + src.index()];
                    let idx = mem_index_of(mem_mask, mem.len(), a);
                    mem[idx] = v;
                    if let Some(s) = san.as_deref_mut() {
                        s.access(t as u32, idx, true, san_site(&frame));
                    }
                    charge_thread(th, &cfg.jitter, cost.store);
                    retire_stores(th, chunk, 1);
                    return Action::None;
                }
                Op::StoreI {
                    value,
                    addr,
                    offset,
                } => {
                    th.frames.last_mut().unwrap().ip += 1;
                    th.m.instructions += 1;
                    let a = th.regs[base + addr.index()].wrapping_add(*offset);
                    let idx = mem_index_of(mem_mask, mem.len(), a);
                    mem[idx] = *value;
                    if let Some(s) = san.as_deref_mut() {
                        s.access(t as u32, idx, true, san_site(&frame));
                    }
                    charge_thread(th, &cfg.jitter, cost.store);
                    retire_stores(th, chunk, 1);
                    return Action::None;
                }
                Op::Call {
                    func,
                    num_regs,
                    args,
                    dst,
                } => {
                    th.frames.last_mut().unwrap().ip += 1;
                    th.m.instructions += 1;
                    // Grow the register file first, then evaluate arguments
                    // straight into the callee's slots: the caller's
                    // registers live below `reg_base`, so the resize cannot
                    // disturb them and no temporary vector is needed.
                    let reg_base = th.regs.len();
                    th.regs.resize(reg_base + *num_regs as usize, 0);
                    for (i, &a) in args.iter().enumerate() {
                        let v = match a {
                            Operand::Reg(r) => th.regs[base + r.index()],
                            Operand::Imm(v) => v,
                        };
                        th.regs[reg_base + i] = v;
                    }
                    th.frames.push(Frame {
                        func: *func,
                        block: BlockId(0),
                        ip: 0,
                        reg_base,
                        ret_dst: *dst,
                    });
                    charge_thread(th, &cfg.jitter, cost.call);
                    return Action::None;
                }
                Op::Tick { amount } => {
                    if cfg.mode.executes_ticks() {
                        th.frames.last_mut().unwrap().ip += 1;
                        th.m.instructions += 1;
                        th.m.ticks_executed += 1;
                        th.clock += amount;
                        charge_thread(th, &cfg.jitter, cost.tick);
                        return Action::None;
                    }
                    // Baseline / Kendo: the binary was never instrumented —
                    // skip at zero cost and zero cycles.
                    th.frames.last_mut().unwrap().ip += 1;
                    return Action::Free;
                }
                Op::TickDyn {
                    base: tick_base,
                    per_unit,
                    size,
                } => {
                    th.frames.last_mut().unwrap().ip += 1;
                    if cfg.mode.executes_ticks() {
                        th.m.instructions += 1;
                        th.m.ticks_executed += 1;
                        let s = match *size {
                            Operand::Reg(r) => th.regs[base + r.index()],
                            Operand::Imm(v) => v,
                        }
                        .max(0) as u64;
                        th.clock += tick_base + per_unit * s;
                        charge_thread(th, &cfg.jitter, cost.tick + cost.tick_dyn_extra);
                        return Action::None;
                    }
                    return Action::Free;
                }
                Op::LockR(r) => {
                    th.frames.last_mut().unwrap().ip += 1;
                    th.m.instructions += 1;
                    return Action::Lock(th.regs[base + r.index()]);
                }
                Op::LockI(v) => {
                    th.frames.last_mut().unwrap().ip += 1;
                    th.m.instructions += 1;
                    return Action::Lock(*v);
                }
                Op::UnlockR(r) => {
                    th.frames.last_mut().unwrap().ip += 1;
                    th.m.instructions += 1;
                    return Action::Unlock(th.regs[base + r.index()]);
                }
                Op::UnlockI(v) => {
                    th.frames.last_mut().unwrap().ip += 1;
                    th.m.instructions += 1;
                    return Action::Unlock(*v);
                }
                Op::Barrier(id) => {
                    th.frames.last_mut().unwrap().ip += 1;
                    th.m.instructions += 1;
                    return Action::Barrier(*id);
                }
                // Terminators: identical metric/charge order to the
                // interpreter; `ip` does not advance (it resets with the
                // block or dies with the frame).
                Op::Br { target } => {
                    th.m.instructions += 1;
                    charge_thread(th, &cfg.jitter, cost.alu);
                    let f = th.frames.last_mut().unwrap();
                    f.block = *target;
                    f.ip = 0;
                    return Action::None;
                }
                Op::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    th.m.instructions += 1;
                    charge_thread(th, &cfg.jitter, cost.alu);
                    let c = th.regs[base + cond.index()];
                    let f = th.frames.last_mut().unwrap();
                    f.block = if c != 0 { *then_bb } else { *else_bb };
                    f.ip = 0;
                    return Action::None;
                }
                Op::Switch {
                    disc,
                    cases,
                    default,
                } => {
                    th.m.instructions += 1;
                    charge_thread(th, &cfg.jitter, cost.alu);
                    let d = th.regs[base + disc.index()];
                    let target = cases
                        .iter()
                        .find(|(v, _)| *v == d)
                        .map(|(_, b)| *b)
                        .unwrap_or(*default);
                    let f = th.frames.last_mut().unwrap();
                    f.block = target;
                    f.ip = 0;
                    return Action::None;
                }
                ret @ (Op::RetR(_) | Op::RetI(_) | Op::RetVoid) => {
                    th.m.instructions += 1;
                    charge_thread(th, &cfg.jitter, cost.alu);
                    let v = match ret {
                        Op::RetR(r) => Some(th.regs[base + r.index()]),
                        Op::RetI(v) => Some(*v),
                        _ => None,
                    };
                    let popped = th.frames.pop().unwrap();
                    th.regs.truncate(popped.reg_base);
                    if th.frames.is_empty() {
                        return Action::Exited;
                    }
                    if let (Some(dst), Some(v)) = (popped.ret_dst, v) {
                        let caller_base = th.frames.last().unwrap().reg_base;
                        th.regs[caller_base + dst.index()] = v;
                    }
                    return Action::None;
                }
                Op::CallBuiltin { .. } => {} // falls through to the slow path
            }
        }
        self.exec_builtin(core, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detlock_ir::builder::FunctionBuilder;

    fn sample() -> Module {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 1);
        fb.block("entry");
        let x = fb.iconst(3);
        let y = fb.add(x, 4);
        fb.store(y, 0, x);
        fb.lock(1i64);
        fb.unlock(1i64);
        fb.ret_void();
        fb.finish_into(&mut m);
        m
    }

    #[test]
    fn lowering_preserves_shape() {
        let m = sample();
        let p = lower(&m, &CostModel::default());
        assert_eq!(p.funcs.len(), m.functions.len());
        for (lf, f) in p.funcs.iter().zip(&m.functions) {
            assert_eq!(lf.starts.len(), f.blocks.len());
            let total: usize = f.blocks.iter().map(|b| b.insts.len() + 1).sum();
            assert_eq!(lf.ops.len(), total);
            for (b, block) in f.blocks.iter().enumerate() {
                // Block b's ops span starts[b] .. starts[b] + insts + 1,
                // the last slot being its terminator.
                let start = lf.starts[b] as usize;
                let end = start + block.insts.len() + 1;
                assert!(end <= lf.ops.len());
                assert!(matches!(
                    lf.ops[end - 1],
                    Op::Br { .. }
                        | Op::CondBr { .. }
                        | Op::Switch { .. }
                        | Op::RetR(_)
                        | Op::RetI(_)
                        | Op::RetVoid
                ));
                if b + 1 < f.blocks.len() {
                    assert_eq!(lf.starts[b + 1] as usize, end);
                }
            }
        }
    }

    #[test]
    fn fuse_table_is_well_formed() {
        let m = sample();
        let cost = CostModel::default();
        let p = lower(&m, &cost);
        for (lf, f) in p.funcs.iter().zip(&m.functions) {
            assert_eq!(lf.fuse.len(), lf.ops.len());
            for b in 0..f.blocks.len() {
                let start = lf.starts[b] as usize;
                let end = start + f.blocks[b].insts.len() + 1;
                for pc in start..end {
                    let fu = lf.fuse[pc];
                    let k = fu.len as usize;
                    assert!((1..=FUSE_MAX).contains(&k));
                    if k == 1 {
                        continue;
                    }
                    assert!(pc + k <= end, "run leaves its block");
                    assert!(is_head(&lf.ops[pc]), "run head must be a head op");
                    let mut sum = fuse_cost(&lf.ops[pc], &cost);
                    for i in pc + 1..pc + k {
                        if i == end - 1 {
                            assert!(is_tail(&lf.ops[i]), "terminator slot needs a tail op");
                        } else {
                            assert!(is_pure(&lf.ops[i]), "run middles must be register-only");
                        }
                        sum += fuse_cost(&lf.ops[i], &cost);
                    }
                    assert_eq!(fu.cost_sum as u64, sum, "cost bound drifted");
                }
            }
        }
        // The sample opens with const+add: if that stops fusing, the test
        // has gone vacuous.
        assert!(p.funcs[0].fuse[0].len >= 2, "const+add should fuse");
    }

    #[test]
    fn lower_key_tracks_content_and_costs() {
        let m = sample();
        let cost = CostModel::default();
        assert_eq!(lower_key(&m, &cost), lower_key(&m, &cost));
        assert_eq!(lower_key(&m, &cost), lower_key(&sample(), &cost));
        let mut other = CostModel::default();
        other.mul += 1;
        assert_ne!(lower_key(&m, &cost), lower_key(&m, &other));
        let mut m2 = sample();
        m2.functions[0].blocks[0].insts.pop();
        assert_ne!(lower_key(&m, &cost), lower_key(&m2, &cost));
    }

    #[test]
    fn lowered_is_cached_by_content() {
        let m = sample();
        let cost = CostModel::default();
        let a = lowered(&m, &cost);
        let b = lowered(&sample(), &cost);
        assert!(
            Arc::ptr_eq(&a, &b),
            "identical content must share a program"
        );
    }
}
