//! Record/replay — the alternative approach to multithreaded determinism
//! the paper contrasts with (§II: Rerun, Karma, Respec).
//!
//! Instead of making execution deterministic by construction, record/replay
//! logs the synchronization interleaving of one run and *forces* a later
//! run to follow it. This module implements the synchronization-level
//! variant (what Respec logs): [`record`] captures the lock-grant sequence
//! of any run; [`replay`] executes the program granting locks only in the
//! recorded order.
//!
//! It exists for two reasons: (1) as the comparison point the paper argues
//! against — the log grows with execution length (`ReplayLog::len`),
//! whereas DetLock needs no log at all; (2) as a checker — replaying a
//! deterministic run must reproduce it exactly.

use crate::machine::{run, ExecMode, MachineConfig, ThreadSpec};
use crate::metrics::RunMetrics;
use detlock_ir::module::Module;
use detlock_passes::cost::CostModel;

/// A recorded synchronization interleaving: the global sequence of
/// `(lock id, thread)` grants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayLog {
    events: Vec<(i64, u32)>,
}

impl ReplayLog {
    /// Number of logged grants — the memory cost the paper holds against
    /// record/replay schemes (it grows linearly with execution, unlike
    /// DetLock's O(1) per-thread clocks).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The logged grant sequence.
    pub fn events(&self) -> &[(i64, u32)] {
        &self.events
    }

    /// Approximate log size in bytes (12 bytes per event).
    pub fn bytes(&self) -> usize {
        self.events.len() * 12
    }
}

/// Run the program in `mode` and record its lock-grant sequence.
///
/// The machine must be configured with a `lock_order_limit` large enough to
/// keep every event; this function raises it to cover the whole run.
pub fn record(
    module: &Module,
    cost: &CostModel,
    threads: &[ThreadSpec],
    mut cfg: MachineConfig,
) -> (ReplayLog, RunMetrics, bool) {
    cfg.lock_order_limit = usize::MAX;
    let (metrics, hit) = run(module, cost, threads, cfg);
    let log = ReplayLog {
        events: metrics.lock_order.clone(),
    };
    (log, metrics, hit)
}

/// Replay outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayResult {
    /// Metrics of the replayed run.
    pub metrics: RunMetrics,
    /// Whether the replay followed the whole log (`false` = divergence:
    /// the program requested a lock the log did not predict — for race-free
    /// programs this indicates the log came from a different input).
    pub faithful: bool,
    /// Whether the cycle limit was hit.
    pub hit_limit: bool,
}

/// Re-execute the program, granting locks only in the order of `log`.
///
/// Implementation: the replayed run executes in [`ExecMode::Replay`]; the
/// machine consults the log head on every acquisition attempt and admits
/// only the thread the log names next.
pub fn replay(
    module: &Module,
    cost: &CostModel,
    threads: &[ThreadSpec],
    mut cfg: MachineConfig,
    log: &ReplayLog,
) -> ReplayResult {
    cfg.mode = ExecMode::Replay;
    cfg.lock_order_limit = usize::MAX;
    cfg.replay_log = std::sync::Arc::new(log.events.clone());
    let (metrics, hit_limit) = run(module, cost, threads, cfg);
    let faithful = metrics.lock_order == log.events;
    ReplayResult {
        metrics,
        faithful,
        hit_limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Jitter;
    use detlock_ir::builder::FunctionBuilder;
    use detlock_ir::inst::{BinOp, CmpOp};
    use detlock_ir::types::FuncId;

    fn counter_program() -> (Module, FuncId) {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("worker", 2);
        fb.block("entry");
        let head = fb.create_block("head");
        let body = fb.create_block("body");
        let done = fb.create_block("done");
        let iters = fb.param(1);
        let i = fb.iconst(0);
        fb.br(head);
        fb.switch_to(head);
        let c = fb.cmp(CmpOp::Lt, i, iters);
        fb.cond_br(c, body, done);
        fb.switch_to(body);
        fb.compute(10);
        fb.lock(0i64);
        let a = fb.iconst(64);
        let v = fb.load(a, 0);
        let v2 = fb.add(v, 1);
        fb.store(a, 0, v2);
        fb.unlock(0i64);
        fb.bin_to(BinOp::Add, i, i, 1);
        fb.br(head);
        fb.switch_to(done);
        fb.ret_void();
        let f = fb.finish_into(&mut m);
        (m, f)
    }

    fn threads(f: FuncId, n: usize) -> Vec<ThreadSpec> {
        (0..n)
            .map(|t| ThreadSpec {
                func: f,
                args: vec![t as i64, 40],
            })
            .collect()
    }

    fn cfg(seed: u64) -> MachineConfig {
        MachineConfig {
            jitter: Jitter::default().with_seed(seed),
            max_cycles: 100_000_000,
            ..MachineConfig::default()
        }
    }

    #[test]
    fn replay_reproduces_a_recorded_baseline_run() {
        let (m, f) = counter_program();
        let cost = CostModel::default();
        let ts = threads(f, 4);
        let (log, rec_metrics, hit) = record(&m, &cost, &ts, cfg(7));
        assert!(!hit);
        assert_eq!(log.len(), 160);
        assert_eq!(log.bytes(), 160 * 12);

        // Replay under a DIFFERENT timing seed: order must still follow the
        // log exactly.
        let r = replay(&m, &cost, &ts, cfg(9999), &log);
        assert!(!r.hit_limit);
        assert!(r.faithful, "replay diverged from the log");
        assert_eq!(r.metrics.lock_order_hash, rec_metrics.lock_order_hash);
    }

    #[test]
    fn replays_of_different_recordings_differ() {
        let (m, f) = counter_program();
        let cost = CostModel::default();
        let ts = threads(f, 4);
        let (log_a, ma, _) = record(&m, &cost, &ts, cfg(1));
        let (log_b, mb, _) = record(&m, &cost, &ts, cfg(2));
        // Baseline runs with different seeds give different interleavings
        // (this is the nondeterminism record/replay exists to capture).
        assert_ne!(ma.lock_order_hash, mb.lock_order_hash);
        let ra = replay(&m, &cost, &ts, cfg(50), &log_a);
        let rb = replay(&m, &cost, &ts, cfg(50), &log_b);
        assert!(ra.faithful && rb.faithful);
        assert_ne!(ra.metrics.lock_order_hash, rb.metrics.lock_order_hash);
    }

    #[test]
    fn log_grows_with_execution_detlock_state_does_not() {
        // The paper's §II argument quantified: double the work, double the
        // log; DetLock's deterministic state stays 8 bytes per thread.
        let (m, f) = counter_program();
        let cost = CostModel::default();
        let short: Vec<ThreadSpec> = (0..4)
            .map(|t| ThreadSpec {
                func: f,
                args: vec![t, 20],
            })
            .collect();
        let long: Vec<ThreadSpec> = (0..4)
            .map(|t| ThreadSpec {
                func: f,
                args: vec![t, 200],
            })
            .collect();
        let (la, _, _) = record(&m, &cost, &short, cfg(1));
        let (lb, _, _) = record(&m, &cost, &long, cfg(1));
        assert_eq!(la.len() * 10, lb.len());
    }

    #[test]
    fn replay_of_det_mode_run_matches_det_mode() {
        // Det mode is its own replay: recording a deterministic run and
        // replaying it must agree with simply rerunning det mode.
        let (m, f) = counter_program();
        let cost = CostModel::default();
        let ts = threads(f, 3);
        let mut det_cfg = cfg(3);
        det_cfg.mode = ExecMode::Det;
        let (log, _, _) = record(&m, &cost, &ts, det_cfg.clone());
        let r = replay(&m, &cost, &ts, cfg(77), &log);
        assert!(r.faithful);
        let (again, _) = run(&m, &cost, &ts, det_cfg);
        assert_eq!(r.metrics.lock_order_hash, again.lock_order_hash);
    }
}
