//! *Water-nsq*-shaped workload: a tiny, extremely hot inner `for` loop
//! containing an `if`, with per-molecule locks and a per-step barrier.
//!
//! The paper singles Water-nsq out twice: its clock-insertion overhead is
//! the highest of all benchmarks (43% unoptimized — the inner loop's blocks
//! are only a handful of instructions, so a tick per block nearly doubles
//! them) and it is the one benchmark where DetLock loses to Kendo, because
//! no optimization can remove the *frequency* of updates in that loop
//! (§V-C). Optimizations 2 (conditional blocks) and 4 (loops) are the ones
//! that bite; there are no calls, so 1 and 3 do nothing.

use crate::util::scratch_base;
use crate::{ThreadPlan, Workload};
use detlock_ir::builder::FunctionBuilder;
use detlock_ir::inst::{BinOp, CmpOp, Operand};
use detlock_ir::types::BarrierId;
use detlock_ir::Module;

/// Water-nsq parameters.
#[derive(Debug, Clone)]
pub struct WaterParams {
    /// Outer molecular-dynamics steps.
    pub steps: i64,
    /// Molecules per thread per step (one lock per molecule).
    pub molecules: i64,
    /// Partner interactions per molecule — inner-loop trip count.
    pub partners: i64,
    /// Number of distinct molecule locks.
    pub num_locks: i64,
}

impl WaterParams {
    /// Parameters scaled from the defaults.
    pub fn scaled(scale: f64) -> WaterParams {
        WaterParams {
            steps: ((8.0 * scale) as i64).max(1),
            molecules: 4,
            partners: 3400,
            num_locks: 64,
        }
    }
}

/// Build the Water-nsq workload.
pub fn build(threads: usize, params: &WaterParams) -> Workload {
    let mut module = Module::new();

    // entry(tid, steps, molecules, partners)
    let mut fb = FunctionBuilder::new("water_thread", 4);
    fb.block("entry");
    let step_head = fb.create_block("step.cond");
    let mol_head = fb.create_block("mol.cond");
    let inner_head = fb.create_block("for.cond");
    let inner_body = fb.create_block("for.body");
    let if_then = fb.create_block("if.then");
    let if_else = fb.create_block("if.else");
    let inner_inc = fb.create_block("for.inc");
    let mol_update = fb.create_block("mol.update");
    let mol_inc = fb.create_block("mol.inc");
    let step_latch = fb.create_block("step.inc");
    let done = fb.create_block("done");

    let tid = fb.param(0);
    let steps = fb.param(1);
    let molecules = fb.param(2);
    let partners = fb.param(3);
    let scratch = scratch_base(&mut fb, tid);
    let step = fb.iconst(0);
    let m = fb.iconst(0);
    let k = fb.iconst(0);
    let force = fb.iconst(0);
    fb.br(step_head);

    fb.switch_to(step_head);
    let cs = fb.cmp(CmpOp::Lt, step, steps);
    fb.cond_br(cs, mol_head, done);

    fb.switch_to(mol_head);
    let cm = fb.cmp(CmpOp::Lt, m, molecules);
    fb.mov_to(k, 0i64);
    fb.cond_br(cm, inner_head, step_latch);

    // The hot inner for loop (paper §V-C): small body with an `if` inside.
    // The header recomputes the cutoff bound (making it slightly heavier
    // than the latch, which is what lets Optimization 4 merge the latch's
    // clock into it, exactly like the paper's for.inc → for.cond merge).
    fb.switch_to(inner_head);
    let bound = fb.bin(BinOp::Sub, partners, Operand::Reg(m));
    let ck = fb.cmp(CmpOp::Lt, k, bound);
    fb.cond_br(ck, inner_body, mol_update);

    fb.switch_to(inner_body);
    // A handful of pair-distance instructions. The running force is
    // spilled each iteration (real compilers keep a store in this loop;
    // retired stores are what drive Kendo's counter).
    fb.store(scratch, 11, Operand::Reg(force));
    let dx = fb.bin(BinOp::Sub, k, Operand::Reg(m));
    let dx2 = fb.mul(dx, Operand::Reg(dx));
    let r = fb.load(scratch, 7);
    let sum = fb.add(dx2, Operand::Reg(r));
    // ~7 of 8 partners are outside the cutoff (cheap arm); the occasional
    // in-range pair pays the full force computation. The imbalance is what
    // keeps Optimization 3's tightness test from averaging this diamond
    // (paper: O3 has no effect on Water-nsq).
    let kb = fb.bin(BinOp::And, k, 7);
    let inrange = fb.cmp(CmpOp::Eq, kb, 0);
    fb.cond_br(inrange, if_else, if_then);

    // Short arm: interaction skipped.
    fb.switch_to(if_then);
    fb.bin_to(BinOp::Add, force, force, 1);
    fb.br(inner_inc);

    // Longer arm: the force contribution.
    fb.switch_to(if_else);
    let a = fb.bin(BinOp::Shr, sum, 2);
    let e = fb.bin(BinOp::Xor, a, Operand::Reg(sum));
    let f = fb.bin(BinOp::And, e, 0xffff);
    let g = fb.mul(f, 7);
    let h = fb.add(g, Operand::Reg(e));
    let i2 = fb.bin(BinOp::Shr, h, 3);
    let j = fb.bin(BinOp::Xor, i2, Operand::Reg(f));
    fb.store(scratch, 9, Operand::Reg(j));
    fb.bin_to(BinOp::Add, force, force, Operand::Reg(j));
    fb.br(inner_inc);

    fb.switch_to(inner_inc);
    fb.bin_to(BinOp::Add, k, k, 1);
    fb.br(inner_head);

    // Per-molecule force write-back under the molecule's lock.
    fb.switch_to(mol_update);
    let lock_id = fb.bin(BinOp::And, m, params.num_locks - 1);
    let lock_id = fb.add(lock_id, 100);
    fb.lock(lock_id);
    let maddr = fb.bin(BinOp::And, m, 255);
    let maddr = fb.add(maddr, 512);
    let old = fb.load(maddr, 0);
    let newv = fb.add(old, Operand::Reg(force));
    fb.store(maddr, 0, newv);
    fb.unlock(lock_id);
    fb.br(mol_inc);

    fb.switch_to(mol_inc);
    fb.bin_to(BinOp::Add, m, m, 1);
    fb.br(mol_head);

    fb.switch_to(step_latch);
    fb.barrier(BarrierId(0));
    fb.bin_to(BinOp::Add, step, step, 1);
    fb.mov_to(m, 0i64);
    fb.br(step_head);

    fb.switch_to(done);
    fb.ret_void();
    let entry = fb.finish_into(&mut module);

    Workload {
        name: "water-nsq",
        module,
        entries: vec![entry],
        threads: (0..threads)
            .map(|t| ThreadPlan {
                func: entry,
                args: vec![t as i64, params.steps, params.molecules, params.partners],
            })
            .collect(),
        mem_words: 1 << 16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detlock_ir::verify::verify_module;

    #[test]
    fn builds_and_verifies() {
        let w = build(4, &WaterParams::scaled(0.1));
        assert!(verify_module(&w.module).is_ok());
        assert_eq!(w.threads.len(), 4);
    }

    #[test]
    fn inner_loop_blocks_are_small() {
        let w = build(4, &WaterParams::scaled(0.1));
        let f = w.module.func(w.entries[0]);
        let body = f.block_by_name("for.body").unwrap();
        assert!(f.block(body).insts.len() <= 12);
        let then = f.block_by_name("if.then").unwrap();
        assert!(f.block(then).insts.len() <= 3);
    }

    #[test]
    fn o1_and_o3_do_not_help_water() {
        use detlock_passes::cost::CostModel;
        use detlock_passes::pipeline::{instrument, OptConfig, OptLevel};
        use detlock_passes::plan::Placement;
        let w = build(4, &WaterParams::scaled(0.05));
        let cost = CostModel::default();
        let count = |lvl| {
            instrument(
                &w.module,
                &cost,
                &OptConfig::only(lvl),
                Placement::Start,
                &w.entries,
            )
            .stats
            .ticks_inserted
        };
        let none = count(OptLevel::None);
        assert_eq!(count(OptLevel::O1), none, "no calls, O1 inert");
        assert!(count(OptLevel::O2) < none, "O2 must reduce ticks");
        assert!(count(OptLevel::O4) < none, "O4 must reduce ticks");
    }
}
