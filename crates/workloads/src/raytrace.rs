//! *Raytrace*-shaped workload: a tile queue feeding per-pixel ray casts
//! with a branchy BVH-descent ladder and calls to small shading leaves.
//!
//! Table I shape: moderate lock frequency (~230k locks/sec — one lock per
//! 64-pixel tile), medium basic blocks (~7% unoptimized clock overhead),
//! many clockable functions (paper: 33), modest improvement from every
//! optimization, and a deterministic-execution overhead a bit above the
//! clock overhead.

use crate::util::{branchy_leaf, pop_task, scratch_base, single_block_leaf, GenRng};
use crate::{ThreadPlan, Workload};
use detlock_ir::builder::FunctionBuilder;
use detlock_ir::inst::{BinOp, CmpOp, Operand};
use detlock_ir::types::FuncId;
use detlock_ir::Module;

/// Raytrace parameters.
#[derive(Debug, Clone)]
pub struct RaytraceParams {
    /// Total tiles in the work queue.
    pub tiles: i64,
    /// Pixels per tile (work between queue locks).
    pub pixels_per_tile: i64,
    /// Generated leaf functions (paper's clockable count: 33).
    pub leaves: usize,
}

impl RaytraceParams {
    /// Parameters scaled from the defaults.
    pub fn scaled(scale: f64) -> RaytraceParams {
        RaytraceParams {
            tiles: ((120.0 * scale) as i64).max(8),
            pixels_per_tile: 64,
            leaves: 30,
        }
    }
}

/// Build the Raytrace workload.
pub fn build(threads: usize, params: &RaytraceParams) -> Workload {
    let mut module = Module::new();
    let mut rng = GenRng::new(0x4a117ace);

    let mut leaves: Vec<FuncId> = Vec::new();
    for i in 0..params.leaves {
        let id = if i % 4 == 0 {
            branchy_leaf(
                &mut module,
                format!("shade{i}"),
                rng.range(14, 30) as usize,
                rng.range(0, 3) as usize,
            )
        } else {
            single_block_leaf(
                &mut module,
                format!("intersect{i}"),
                rng.range(20, 60) as usize,
            )
        };
        leaves.push(id);
    }

    // trace_pixel(scratch, seed): BVH-descent ladder of medium blocks with
    // data-dependent depth, then 2-4 shading calls.
    let mut fb = FunctionBuilder::new("trace_pixel", 2);
    fb.block("entry");
    let scratch = fb.param(0);
    let seed = fb.param(1);
    let state = fb.mov(seed);
    let exit_bb = fb.create_block("shade.calls");
    const LADDER: usize = 6;
    for level in 0..LADDER {
        let hit = fb.create_block(format!("bvh{level}.hit"));
        let slab = fb.create_block(format!("bvh{level}.lor.rhs"));
        let miss = fb.create_block(format!("bvh{level}.miss"));
        let cont = fb.create_block(format!("bvh{level}.cont"));
        // Node test with a short-circuit OR — `if (quick_accept ||
        // slab_test) hit else miss` — the exact `if.end21` /
        // `lor.lhs.false23` / `if.then28` shape Optimization 2b targets.
        crate::util::mixed_compute(&mut fb, 22, scratch);
        let s2 = fb.builtin(detlock_ir::Builtin::Rand, vec![Operand::Reg(state)], None);
        fb.mov_to(state, s2);
        let b = fb.bin(BinOp::And, s2, 7);
        let quick = fb.cmp(CmpOp::Lt, b, 4);
        fb.cond_br(quick, hit, slab);
        fb.switch_to(slab);
        // The slower slab test (~8 instructions).
        let t1 = fb.bin(BinOp::Shr, s2, 3);
        let t2 = fb.bin(BinOp::And, t1, 15);
        let t3 = fb.mul(t2, 3);
        let t4 = fb.bin(BinOp::Xor, t3, Operand::Reg(b));
        let c2 = fb.cmp(CmpOp::Lt, t4, 28);
        fb.cond_br(c2, hit, miss);
        fb.switch_to(miss);
        // Early exit: a minority of rays leave the ladder here (pixel-cost
        // heterogeneity).
        crate::util::mixed_compute(&mut fb, 6, scratch);
        fb.br(exit_bb);
        fb.switch_to(hit);
        crate::util::mixed_compute(&mut fb, 12, scratch);
        fb.br(cont);
        fb.switch_to(cont);
    }
    fb.br(exit_bb);
    fb.switch_to(exit_bb);
    // ~1 in 16 rays hits a reflective surface and pays a much deeper
    // traversal (pixel-cost heterogeneity drives the deterministic waits).
    let refl = fb.create_block("reflect");
    let shade = fb.create_block("shade");
    let rbits = fb.bin(BinOp::And, state, 15);
    let is_refl = fb.cmp(CmpOp::Eq, rbits, 0);
    fb.cond_br(is_refl, refl, shade);
    fb.switch_to(refl);
    crate::util::mixed_compute(&mut fb, 700, scratch);
    fb.br(shade);
    fb.switch_to(shade);
    for c in 0..3 {
        let leaf = leaves[rng.range(0, leaves.len() as u64) as usize];
        let sel = fb.add(state, c as i64);
        let mut args = vec![Operand::Reg(scratch)];
        if module.func(leaf).params == 2 {
            args.push(Operand::Reg(sel));
        }
        fb.call_void(leaf, args);
    }
    fb.ret_void();
    let trace_pixel = fb.finish_into(&mut module);

    // entry(tid, tiles, pixels_per_tile)
    let mut fb = FunctionBuilder::new("raytrace_thread", 3);
    fb.block("entry");
    let tile_loop = fb.create_block("tile.loop");
    let pixel_head = fb.create_block("pixel.cond");
    let pixel_body = fb.create_block("pixel.body");
    let done = fb.create_block("done");
    let tid = fb.param(0);
    let tiles = fb.param(1);
    let ppt = fb.param(2);
    let scratch = scratch_base(&mut fb, tid);
    let p = fb.iconst(0);
    fb.br(tile_loop);

    fb.switch_to(tile_loop);
    let tile = pop_task(&mut fb, 0);
    let have = fb.cmp(CmpOp::Lt, tile, tiles);
    fb.mov_to(p, 0i64);
    fb.cond_br(have, pixel_head, done);

    fb.switch_to(pixel_head);
    let c = fb.cmp(CmpOp::Lt, p, ppt);
    fb.cond_br(c, pixel_body, tile_loop);

    fb.switch_to(pixel_body);
    let tile_base = fb.mul(tile, 4096);
    let seed = fb.add(tile_base, Operand::Reg(p));
    fb.call_void(trace_pixel, vec![Operand::Reg(scratch), Operand::Reg(seed)]);
    fb.bin_to(BinOp::Add, p, p, 1);
    fb.br(pixel_head);

    fb.switch_to(done);
    fb.ret_void();
    let entry = fb.finish_into(&mut module);

    Workload {
        name: "raytrace",
        module,
        entries: vec![entry],
        threads: (0..threads)
            .map(|t| ThreadPlan {
                func: entry,
                args: vec![t as i64, params.tiles, params.pixels_per_tile],
            })
            .collect(),
        mem_words: 1 << 16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detlock_ir::verify::verify_module;
    use detlock_passes::cost::CostModel;
    use detlock_passes::pipeline::{instrument, OptConfig, OptLevel};
    use detlock_passes::plan::Placement;

    #[test]
    fn builds_and_verifies() {
        let w = build(4, &RaytraceParams::scaled(0.1));
        assert!(verify_module(&w.module).is_ok());
    }

    #[test]
    fn clockable_count_near_paper() {
        let w = build(4, &RaytraceParams::scaled(0.1));
        let cost = CostModel::default();
        let out = instrument(
            &w.module,
            &cost,
            &OptConfig::only(OptLevel::O1),
            Placement::Start,
            &w.entries,
        );
        let n = out.stats.clockable_functions;
        assert!((20..=40).contains(&n), "clockable: {n} (paper: 33)");
    }
}
