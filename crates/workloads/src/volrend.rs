//! *Volrend*-shaped workload: ray casting through a volume with
//! empty-space skipping, fed from a batch queue.
//!
//! Table I shape: fairly high lock frequency (~440k locks/sec — one lock
//! per small ray batch), medium blocks (~8% unoptimized clock overhead)
//! arranged in a conditional ladder that Optimization 2 halves, ~35
//! clockable functions, and near-zero extra deterministic-execution
//! overhead (batches are cheap and uniform, so thread clocks stay close).

use crate::util::{pop_task, scratch_base, single_block_leaf, GenRng};
use crate::{ThreadPlan, Workload};
use detlock_ir::builder::FunctionBuilder;
use detlock_ir::inst::{BinOp, CmpOp, Operand};
use detlock_ir::types::FuncId;
use detlock_ir::Module;

/// Volrend parameters.
#[derive(Debug, Clone)]
pub struct VolrendParams {
    /// Total ray batches in the queue.
    pub batches: i64,
    /// Rays per batch.
    pub rays_per_batch: i64,
    /// Samples marched per ray.
    pub samples: i64,
    /// Generated leaf functions (paper's clockable count: 35).
    pub leaves: usize,
}

impl VolrendParams {
    /// Parameters scaled from the defaults.
    pub fn scaled(scale: f64) -> VolrendParams {
        VolrendParams {
            batches: ((260.0 * scale) as i64).max(8),
            rays_per_batch: 8,
            samples: 36,
            leaves: 32,
        }
    }
}

/// Build the Volrend workload.
pub fn build(threads: usize, params: &VolrendParams) -> Workload {
    let mut module = Module::new();
    let mut rng = GenRng::new(0x701e3d);

    let mut leaves: Vec<FuncId> = Vec::new();
    for i in 0..params.leaves {
        leaves.push(single_block_leaf(
            &mut module,
            format!("voxel_op{i}"),
            rng.range(16, 44) as usize,
        ));
    }

    // march_ray(scratch, seed, samples): sample loop whose body is a clean
    // if/else diamond — transparent voxels skip cheaply, others composite —
    // the precise shape Optimization 2a collapses (zero one arm, push the
    // merge up, hoist the minimum into the branch block).
    let mut fb = FunctionBuilder::new("march_ray", 3); // (scratch, seed, samples)
    fb.block("entry");
    let head = fb.create_block("sample.cond");
    let body = fb.create_block("sample.body");
    let transparent = fb.create_block("skip");
    let composite = fb.create_block("composite");
    let latch = fb.create_block("sample.inc");
    let out = fb.create_block("out");
    let scratch = fb.param(0);
    let seed = fb.param(1);
    let samples = fb.param(2);
    let state = fb.mov(seed);
    let s = fb.iconst(0);
    let opacity = fb.iconst(0);
    fb.br(head);

    fb.switch_to(head);
    let c = fb.cmp(CmpOp::Lt, s, samples);
    fb.cond_br(c, body, out);

    fb.switch_to(body);
    crate::util::mixed_compute(&mut fb, 24, scratch);
    let s2 = fb.builtin(detlock_ir::Builtin::Rand, vec![Operand::Reg(state)], None);
    fb.mov_to(state, s2);
    let v = fb.bin(BinOp::And, s2, 15);
    let is_empty = fb.cmp(CmpOp::Lt, v, 6);
    fb.cond_br(is_empty, transparent, composite);

    fb.switch_to(transparent);
    // Empty-space skip: tiny.
    fb.bin_to(BinOp::Add, opacity, opacity, 1);
    fb.br(latch);

    fb.switch_to(composite);
    crate::util::mixed_compute(&mut fb, 30, scratch);
    fb.bin_to(BinOp::Add, opacity, opacity, Operand::Reg(v));
    fb.br(latch);

    fb.switch_to(latch);
    fb.bin_to(BinOp::Add, s, s, 1);
    fb.br(head);

    fb.switch_to(out);
    fb.store(scratch, 1, Operand::Reg(opacity));
    fb.ret_void();
    let march = fb.finish_into(&mut module);

    // render_batch(scratch, batch, rays, samples): calls march per ray plus
    // a few leaf table lookups — gives O1 call sites outside the hot loop.
    let mut fb = FunctionBuilder::new("render_batch", 4);
    fb.block("entry");
    let rhead = fb.create_block("ray.cond");
    let rbody = fb.create_block("ray.body");
    let rdone = fb.create_block("ray.done");
    let scratch = fb.param(0);
    let batch = fb.param(1);
    let rays = fb.param(2);
    let samples = fb.param(3);
    let r = fb.iconst(0);
    fb.br(rhead);
    fb.switch_to(rhead);
    let c = fb.cmp(CmpOp::Lt, r, rays);
    fb.cond_br(c, rbody, rdone);
    fb.switch_to(rbody);
    let base = fb.mul(batch, 131);
    let seed = fb.add(base, Operand::Reg(r));
    fb.call_void(
        march,
        vec![
            Operand::Reg(scratch),
            Operand::Reg(seed),
            Operand::Reg(samples),
        ],
    );
    let li = fb.bin(BinOp::Rem, seed, leaves.len() as i64);
    let _ = li;
    let leaf = leaves[1 % leaves.len()];
    fb.call_void(leaf, vec![Operand::Reg(scratch)]);
    fb.bin_to(BinOp::Add, r, r, 1);
    fb.br(rhead);
    fb.switch_to(rdone);
    fb.ret_void();
    let render_batch = fb.finish_into(&mut module);

    // entry(tid, batches, rays_per_batch, samples)
    let mut fb = FunctionBuilder::new("volrend_thread", 4);
    fb.block("entry");
    let bloop = fb.create_block("batch.loop");
    let work = fb.create_block("batch.work");
    let done = fb.create_block("done");
    let tid = fb.param(0);
    let batches = fb.param(1);
    let rpb = fb.param(2);
    let samples = fb.param(3);
    let scratch = scratch_base(&mut fb, tid);
    fb.br(bloop);

    fb.switch_to(bloop);
    let batch = pop_task(&mut fb, 0);
    let have = fb.cmp(CmpOp::Lt, batch, batches);
    fb.cond_br(have, work, done);

    fb.switch_to(work);
    fb.call_void(
        render_batch,
        vec![
            Operand::Reg(scratch),
            Operand::Reg(batch),
            Operand::Reg(rpb),
            Operand::Reg(samples),
        ],
    );
    fb.br(bloop);

    fb.switch_to(done);
    fb.ret_void();
    let entry = fb.finish_into(&mut module);

    Workload {
        name: "volrend",
        module,
        entries: vec![entry],
        threads: (0..threads)
            .map(|t| ThreadPlan {
                func: entry,
                args: vec![
                    t as i64,
                    params.batches,
                    params.rays_per_batch,
                    params.samples,
                ],
            })
            .collect(),
        mem_words: 1 << 16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detlock_ir::verify::verify_module;
    use detlock_passes::cost::CostModel;
    use detlock_passes::pipeline::{instrument, OptConfig, OptLevel};
    use detlock_passes::plan::Placement;

    #[test]
    fn builds_and_verifies() {
        let w = build(4, &VolrendParams::scaled(0.1));
        assert!(verify_module(&w.module).is_ok());
    }

    #[test]
    fn o2_reduces_ticks() {
        let w = build(4, &VolrendParams::scaled(0.1));
        let cost = CostModel::default();
        let count = |lvl| {
            instrument(
                &w.module,
                &cost,
                &OptConfig::only(lvl),
                Placement::Start,
                &w.entries,
            )
            .stats
            .ticks_inserted
        };
        assert!(count(OptLevel::O2) < count(OptLevel::None));
    }

    #[test]
    fn clockable_count_near_paper() {
        let w = build(4, &VolrendParams::scaled(0.1));
        let cost = CostModel::default();
        let out = instrument(
            &w.module,
            &cost,
            &OptConfig::only(OptLevel::O1),
            Placement::Start,
            &w.entries,
        );
        let n = out.stats.clockable_functions;
        assert!((20..=40).contains(&n), "clockable: {n} (paper: 35)");
    }
}
