//! *Radiosity*-shaped workload: a task queue with a very high lock
//! frequency feeding heterogeneous, compute-dense tasks built from many
//! small clockable functions.
//!
//! Radiosity is the paper's stress test: 2.2M locks/sec, high clock
//! overhead (41% unoptimized), the largest deterministic-execution overhead
//! (72% unoptimized), and the benchmark where Function Clocking (O1)
//! shines — its compute-intensive leaf functions are exactly the
//! "clockable" shape, and charging their whole cost ahead of time at the
//! call site slashes the time lock waiters spend watching stale clocks
//! (§V-A/§V-B, Figure 15).
//!
//! Structure mirrored from the original: *task processing* functions
//! (`process_kind*`) contain subdivision loops and branchy glue — loops
//! make them unclockable, so their clock code survives O1 and is what O2/O4
//! attack; the *leaf* functions they call (`form_factor*`,
//! `intersection_type*` — the paper's running example is
//! `intersection_type`) are loop-free ladders of small balanced diamonds —
//! dense with ticks when unoptimized, fully de-clocked by O1. Task sizes
//! span ~25× (visibility test vs full element subdivision), which drifts
//! thread clocks apart and makes deterministic waits bite at this lock
//! rate.

use crate::util::{scratch_base, single_block_leaf, GenRng, SCRATCH_WORDS};
use crate::{ThreadPlan, Workload};
use detlock_ir::builder::FunctionBuilder;
use detlock_ir::inst::{BinOp, CmpOp, Operand};
use detlock_ir::types::FuncId;
use detlock_ir::Module;

/// Radiosity parameters.
#[derive(Debug, Clone)]
pub struct RadiosityParams {
    /// Total tasks in the queue.
    pub tasks: i64,
    /// Number of generated leaf compute functions.
    pub leaves: usize,
    /// Number of mid-level functions (each calls a few leaves).
    pub mids: usize,
    /// Distinct task kinds (switch fan-out).
    pub kinds: usize,
}

impl RadiosityParams {
    /// Parameters scaled from the defaults.
    pub fn scaled(scale: f64) -> RadiosityParams {
        RadiosityParams {
            tasks: ((1400.0 * scale) as i64).max(16),
            leaves: 26,
            mids: 6,
            kinds: 8,
        }
    }
}

/// Build the Radiosity workload.
pub fn build(threads: usize, params: &RadiosityParams) -> Workload {
    build_with_iters(threads, params, 7)
}

/// [`build`] with an explicit subdivision multiplier (larger ⇒ bigger tasks
/// ⇒ lower lock frequency — used for the Kendo-dataset variant).
pub fn build_with_iters(
    threads: usize,
    params: &RadiosityParams,
    iter_multiplier: i64,
) -> Workload {
    let mut module = Module::new();
    let mut rng = GenRng::new(0x4ad1051);

    // Micro-leaves: tiny single-block helpers (vector ops, table lookups).
    let n_micro = 8;
    let mut micros: Vec<FuncId> = Vec::new();
    for i in 0..n_micro {
        micros.push(single_block_leaf(
            &mut module,
            format!("vec_op{i}"),
            rng.range(8, 16) as usize,
        ));
    }

    // Leaf compute functions: ladders of small balanced diamonds whose arms
    // call micro-leaves. This is the paper's call-graph shape: a ladder is
    // *tight* only after the micro-leaves' means are substituted at their
    // call sites — which is exactly what Optimization 1's greedy fixpoint
    // does (Fig. 4). Optimization 3, being intra-function, sees unclocked
    // calls pinning the arm blocks and cannot average the region — the
    // paper's observation that O3 helps Radiosity far less than O1.
    let mut leaves: Vec<FuncId> = Vec::new();
    for i in 0..params.leaves {
        let name = if i % 3 == 0 {
            format!("intersection_type{i}")
        } else {
            format!("form_factor{i}")
        };
        let rungs = rng.range(6, 12) as usize;
        let mut fb = FunctionBuilder::new(name, 2); // (scratch, sel)
        fb.block("entry");
        let scratch = fb.param(0);
        let sel = fb.param(1);
        let acc = fb.iconst(1);
        for rung in 0..rungs {
            let t = fb.create_block(format!("r{rung}.then"));
            let e = fb.create_block(format!("r{rung}.else"));
            let m = fb.create_block(format!("r{rung}.end"));
            let bit = fb.bin(BinOp::Shr, sel, rung as i64 & 31);
            let bit = fb.bin(BinOp::And, bit, 1);
            let c = fb.cmp(CmpOp::Ne, bit, 0);
            fb.cond_br(c, t, e);
            let arm = rng.range(2, 6) as i64;
            fb.switch_to(t);
            for k in 0..arm {
                fb.bin_to(BinOp::Add, acc, acc, Operand::Imm(k + 1));
            }
            if rung % 3 == 0 {
                let micro = micros[rng.range(0, n_micro as u64) as usize];
                fb.call_void(micro, vec![Operand::Reg(scratch)]);
            }
            fb.br(m);
            fb.switch_to(e);
            for k in 0..arm {
                fb.bin_to(BinOp::Xor, acc, acc, Operand::Imm(k + 3));
            }
            if rung % 3 == 0 {
                let micro = micros[rng.range(0, n_micro as u64) as usize];
                fb.call_void(micro, vec![Operand::Reg(scratch)]);
            }
            fb.store(
                scratch,
                (rung as i64 * 3) % SCRATCH_WORDS,
                Operand::Reg(acc),
            );
            fb.br(m);
            fb.switch_to(m);
            fb.bin_to(BinOp::Mul, acc, acc, Operand::Imm(3));
        }
        fb.store(scratch, 1, Operand::Reg(acc));
        fb.ret_void();
        leaves.push(fb.finish_into(&mut module));
    }

    // Mid-level functions: call 2-4 leaves with small glue; clockable once
    // the leaves are (exercises the greedy fixpoint of Fig. 4).
    let mut mids: Vec<FuncId> = Vec::new();
    for i in 0..params.mids {
        let mut fb = FunctionBuilder::new(format!("compute_patch{i}"), 2); // (scratch, sel)
        fb.block("entry");
        let scratch = fb.param(0);
        let sel = fb.param(1);
        let ncalls = rng.range(4, 7);
        for c in 0..ncalls {
            let leaf = leaves[rng.range(0, leaves.len() as u64) as usize];
            let s = fb.add(sel, c as i64);
            fb.call_void(leaf, vec![Operand::Reg(scratch), Operand::Reg(s)]);
        }
        fb.ret_void();
        mids.push(fb.finish_into(&mut module));
    }

    // Task-kind processors: a subdivision loop (unclockable) whose body is
    // branchy small-block glue plus leaf/mid calls. Task cost scales with
    // the kind: kind 0 ≈ a quick visibility test, kind 7 ≈ a full
    // subdivision pass — ~25× spread.
    let mut kind_funcs: Vec<FuncId> = Vec::new();
    for kind in 0..params.kinds {
        let mut fb = FunctionBuilder::new(format!("process_kind{kind}"), 2); // (scratch, task)
        fb.block("entry");
        let head = fb.create_block("sub.cond");
        let body = fb.create_block("sub.body");
        let glue_a = fb.create_block("glue.then");
        let glue_b = fb.create_block("glue.else");
        let glue_m = fb.create_block("glue.end");
        let call_bb = fb.create_block("calls");
        let latch = fb.create_block("sub.inc");
        let out = fb.create_block("out");

        let scratch = fb.param(0);
        let task = fb.param(1);
        let sub = fb.iconst(0);
        // Subdivision count scales with the kind: ~25x spread of task cost.
        let iters = fb.iconst((1 + 2 * kind as i64) * iter_multiplier);
        fb.br(head);

        fb.switch_to(head);
        let budget = fb.add(iters, 0i64); // header slightly heavier than latch
        let c = fb.cmp(CmpOp::Lt, sub, budget);
        fb.cond_br(c, body, out);

        fb.switch_to(body);
        // Small glue diamond (O2's shape).
        let mix = fb.add(task, Operand::Reg(sub));
        let bit = fb.bin(BinOp::And, mix, 1);
        let gc = fb.cmp(CmpOp::Ne, bit, 0);
        fb.cond_br(gc, glue_a, glue_b);
        fb.switch_to(glue_a);
        let v = fb.mul(mix, 5);
        fb.store(scratch, 30, Operand::Reg(v));
        fb.br(glue_m);
        // The else arm is several times heavier: the imbalance keeps
        // Optimization 3 from averaging the glue (paper: O3 has little
        // effect on Radiosity) while Optimization 2a still hoists the
        // minimum precisely.
        fb.switch_to(glue_b);
        let w = fb.bin(BinOp::Xor, mix, 0x3f);
        crate::util::mixed_compute(&mut fb, 12, scratch);
        fb.store(scratch, 31, Operand::Reg(w));
        fb.br(glue_m);
        fb.switch_to(glue_m);
        // Every 128th subdivision updates a patch element under its own lock
        // (radiosity locks the element being refined).
        let lock_m = fb.create_block("elem.lock");
        let lock_skip = fb.create_block("elem.skip");
        let phase = fb.bin(BinOp::And, sub, 127);
        let do_lock = fb.cmp(CmpOp::Eq, phase, 0);
        fb.cond_br(do_lock, lock_m, lock_skip);
        fb.switch_to(lock_m);
        let elem = fb.bin(BinOp::And, mix, 63);
        let elem_lock = fb.add(elem, 200);
        fb.lock(elem_lock);
        let eaddr = fb.add(elem, 2048);
        let old = fb.load(eaddr, 0);
        let upd = fb.add(old, Operand::Reg(mix));
        fb.store(eaddr, 0, upd);
        crate::util::mixed_compute(&mut fb, 24, scratch);
        fb.unlock(elem_lock);
        fb.br(call_bb);
        fb.switch_to(lock_skip);
        crate::util::mixed_compute(&mut fb, 5, scratch);
        fb.br(call_bb);

        fb.switch_to(call_bb);
        // A leaf/mid call every 4th subdivision iteration; the rest of the
        // loop is raw branchy glue (the unclockable clock mass O1 cannot
        // touch but O2/O4 can reduce).
        let call_do = fb.create_block("call.do");
        let call_skip = fb.create_block("call.skip");
        let cphase = fb.bin(BinOp::And, sub, 3);
        let do_call = fb.cmp(CmpOp::Eq, cphase, 0);
        fb.cond_br(do_call, call_do, call_skip);
        fb.switch_to(call_do);
        let use_mid = kind >= 5 && !mids.is_empty();
        let callee = if use_mid {
            mids[rng.range(0, mids.len() as u64) as usize]
        } else {
            leaves[rng.range(0, leaves.len() as u64) as usize]
        };
        let sel = fb.add(mix, 1i64);
        fb.call_void(callee, vec![Operand::Reg(scratch), Operand::Reg(sel)]);
        fb.br(latch);
        fb.switch_to(call_skip);
        crate::util::mixed_compute(&mut fb, 6, scratch);
        fb.br(latch);

        fb.switch_to(latch);
        fb.bin_to(BinOp::Add, sub, sub, 1);
        fb.br(head);

        fb.switch_to(out);
        fb.ret_void();
        kind_funcs.push(fb.finish_into(&mut module));
    }

    // Entry: pop tasks from the shared queue (the hot lock) until empty.
    // entry(tid, total_tasks)
    let mut fb = FunctionBuilder::new("radiosity_thread", 2);
    fb.block("entry");
    let loop_head = fb.create_block("task.loop");
    let dispatch = fb.create_block("task.dispatch");
    let done = fb.create_block("done");
    let tid = fb.param(0);
    let total = fb.param(1);
    let scratch = scratch_base(&mut fb, tid);
    fb.br(loop_head);

    fb.switch_to(loop_head);
    // Realistic dequeue: the critical section updates several queue words
    // (head, tail, per-kind counters), not just one counter — the hold time
    // is what turns high lock frequency into deterministic-execution cost.
    let qaddr = fb.iconst(crate::util::QUEUE_HEAD);
    fb.lock(0i64);
    let task = fb.load(qaddr, 0);
    let next = fb.add(task, 1);
    fb.store(qaddr, 0, next);
    crate::util::mixed_compute(&mut fb, 420, scratch);
    fb.unlock(0i64);
    let have = fb.cmp(CmpOp::Lt, task, total);
    fb.cond_br(have, dispatch, done);

    fb.switch_to(dispatch);
    // kind = mix(task) % kinds — heterogeneous, deterministic.
    let h = fb.mul(task, 2654435761i64);
    let h = fb.bin(BinOp::Shr, h, 8);
    let kind = fb.bin(BinOp::Rem, h, params.kinds as i64);
    let cases: Vec<(i64, detlock_ir::BlockId)> = (0..params.kinds)
        .map(|k| (k as i64, fb.create_block(format!("kind{k}"))))
        .collect();
    let default_bb = cases[0].1;
    fb.switch(kind, cases.clone(), default_bb);
    for (k, bb) in &cases {
        fb.switch_to(*bb);
        fb.call_void(
            kind_funcs[*k as usize],
            vec![Operand::Reg(scratch), Operand::Reg(task)],
        );
        fb.br(loop_head);
    }

    fb.switch_to(done);
    fb.ret_void();
    let entry = fb.finish_into(&mut module);

    Workload {
        name: "radiosity",
        module,
        entries: vec![entry],
        threads: (0..threads)
            .map(|t| ThreadPlan {
                func: entry,
                args: vec![t as i64, params.tasks],
            })
            .collect(),
        mem_words: 1 << 16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detlock_ir::verify::verify_module;
    use detlock_passes::cost::CostModel;
    use detlock_passes::pipeline::{instrument, OptConfig, OptLevel};
    use detlock_passes::plan::Placement;

    #[test]
    fn builds_and_verifies() {
        let w = build(4, &RadiosityParams::scaled(0.05));
        assert!(verify_module(&w.module).is_ok());
        assert!(w.module.functions.len() > 40);
    }

    #[test]
    fn o1_finds_many_clockable_functions() {
        // The paper reports 39 clockable functions for Radiosity.
        let w = build(4, &RadiosityParams::scaled(0.05));
        let cost = CostModel::default();
        let out = instrument(
            &w.module,
            &cost,
            &OptConfig::only(OptLevel::O1),
            Placement::Start,
            &w.entries,
        );
        let n = out.stats.clockable_functions;
        assert!(
            (30..=44).contains(&n),
            "clockable function count out of the paper's ballpark: {n}"
        );
    }

    #[test]
    fn task_processors_are_not_clockable() {
        // Their loops must keep them (and their glue ticks) out of O1's
        // reach — that is what keeps Radiosity's O1 row at 30%, not 0%.
        let w = build(4, &RadiosityParams::scaled(0.05));
        let cost = CostModel::default();
        let out = instrument(
            &w.module,
            &cost,
            &OptConfig::only(OptLevel::O1),
            Placement::Start,
            &w.entries,
        );
        for (fid, f) in w.module.iter_funcs() {
            if f.name.starts_with("process_kind") {
                assert!(
                    out.plan.clocked[fid.index()].is_none(),
                    "{} must not be clockable",
                    f.name
                );
            }
        }
    }

    #[test]
    fn o1_reduces_ticks_substantially_but_not_fully() {
        let w = build(4, &RadiosityParams::scaled(0.05));
        let cost = CostModel::default();
        let count = |lvl| {
            instrument(
                &w.module,
                &cost,
                &OptConfig::only(lvl),
                Placement::Start,
                &w.entries,
            )
            .stats
            .ticks_inserted
        };
        let none = count(OptLevel::None);
        let o1 = count(OptLevel::O1);
        let all = count(OptLevel::All);
        assert!(
            o1 < none * 3 / 4,
            "O1 should remove ≥25% of ticks: {o1} vs {none}"
        );
        assert!(o1 > 10, "O1 must leave the task-processor glue ticks");
        assert!(all < o1, "All should beat O1 alone: {all} vs {o1}");
    }
}
