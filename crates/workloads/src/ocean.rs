//! *Ocean*-shaped workload: large straight-line grid sweeps separated by
//! barriers, with a single end-of-run reduction lock.
//!
//! SPLASH-2 Ocean simulates eddy currents with red-black Gauss-Seidel
//! sweeps; per-thread work is long runs of dense stencil arithmetic. The
//! relevant shape for DetLock (Table I column 1): very large basic blocks
//! (tick overhead amortizes to ~0%) and a lock frequency orders of
//! magnitude below every other benchmark.

use crate::util::{mixed_compute, scratch_base, GenRng};
use crate::{ThreadPlan, Workload};
use detlock_ir::builder::FunctionBuilder;
use detlock_ir::inst::{BinOp, CmpOp, Operand};
use detlock_ir::types::BarrierId;
use detlock_ir::Module;

/// Ocean parameters.
#[derive(Debug, Clone)]
pub struct OceanParams {
    /// Outer timesteps.
    pub timesteps: i64,
    /// Grid rows swept per thread per phase.
    pub rows: i64,
    /// Instructions per row sweep (the big-block size).
    pub row_ops: usize,
}

impl OceanParams {
    /// Parameters scaled from the defaults.
    pub fn scaled(scale: f64) -> OceanParams {
        OceanParams {
            timesteps: ((400.0 * scale) as i64).max(2),
            rows: 24,
            row_ops: 250,
        }
    }
}

/// Build the Ocean workload for `threads` threads.
pub fn build(threads: usize, params: &OceanParams) -> Workload {
    let mut module = Module::new();
    let mut rng = GenRng::new(0x0cea);

    // entry(tid, timesteps, rows)
    let mut fb = FunctionBuilder::new("ocean_thread", 3);
    fb.block("entry");
    let ts_head = fb.create_block("ts.cond");
    let phase_a_head = fb.create_block("sweepA.cond");
    let phase_a_body = fb.create_block("sweepA.body");
    let phase_a_end = fb.create_block("sweepA.end");
    let phase_b_head = fb.create_block("sweepB.cond");
    let phase_b_body = fb.create_block("sweepB.body");
    let phase_b_end = fb.create_block("sweepB.end");
    let ts_latch = fb.create_block("ts.inc");
    let reduce = fb.create_block("reduce");
    let done = fb.create_block("done");

    let tid = fb.param(0);
    let timesteps = fb.param(1);
    let rows = fb.param(2);
    let scratch = scratch_base(&mut fb, tid);
    let ts = fb.iconst(0);
    let r = fb.iconst(0);
    fb.br(ts_head);

    fb.switch_to(ts_head);
    let c = fb.cmp(CmpOp::Lt, ts, timesteps);
    fb.cond_br(c, phase_a_head, reduce);

    // Phase A sweep.
    fb.switch_to(phase_a_head);
    fb.mov_to(r, 0i64);
    fb.br(phase_a_body);
    fb.switch_to(phase_a_body);
    mixed_compute(
        &mut fb,
        params.row_ops + (rng.range(0, 16) as usize),
        scratch,
    );
    fb.bin_to(BinOp::Add, r, r, 1);
    let ca = fb.cmp(CmpOp::Lt, r, rows);
    fb.cond_br(ca, phase_a_body, phase_a_end);
    fb.switch_to(phase_a_end);
    fb.barrier(BarrierId(0));
    fb.br(phase_b_head);

    // Phase B sweep.
    fb.switch_to(phase_b_head);
    fb.mov_to(r, 0i64);
    fb.br(phase_b_body);
    fb.switch_to(phase_b_body);
    mixed_compute(
        &mut fb,
        params.row_ops + (rng.range(0, 16) as usize),
        scratch,
    );
    fb.bin_to(BinOp::Add, r, r, 1);
    let cb = fb.cmp(CmpOp::Lt, r, rows);
    fb.cond_br(cb, phase_b_body, phase_b_end);
    fb.switch_to(phase_b_end);
    fb.barrier(BarrierId(0));
    fb.br(ts_latch);

    fb.switch_to(ts_latch);
    fb.bin_to(BinOp::Add, ts, ts, 1);
    fb.br(ts_head);

    // End-of-run global error reduction under the lock.
    fb.switch_to(reduce);
    fb.lock(1i64);
    let acc_addr = fb.iconst(16);
    let v = fb.load(acc_addr, 0);
    let local = fb.load(scratch, 0);
    let sum = fb.add(v, Operand::Reg(local));
    fb.store(acc_addr, 0, sum);
    fb.unlock(1i64);
    fb.br(done);
    fb.switch_to(done);
    fb.ret_void();
    let entry = fb.finish_into(&mut module);

    Workload {
        name: "ocean",
        module,
        entries: vec![entry],
        threads: (0..threads)
            .map(|t| ThreadPlan {
                func: entry,
                args: vec![t as i64, params.timesteps, params.rows],
            })
            .collect(),
        mem_words: 1 << 16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detlock_ir::verify::verify_module;

    #[test]
    fn builds_and_verifies() {
        let w = build(4, &OceanParams::scaled(0.1));
        assert!(verify_module(&w.module).is_ok());
        assert_eq!(w.threads.len(), 4);
        assert_eq!(w.name, "ocean");
    }

    #[test]
    fn big_blocks_dominate() {
        let w = build(4, &OceanParams::scaled(0.1));
        let f = w.module.func(w.entries[0]);
        let max_block = f.blocks.iter().map(|b| b.insts.len()).max().unwrap();
        assert!(
            max_block >= 200,
            "ocean must have large blocks: {max_block}"
        );
    }
}
