//! Deliberately defective micro workloads — the negative controls.
//!
//! [`build`] is detlint's control: every thread hammers a read-modify-write
//! increment on a shared counter **without taking the lock** (the seeded
//! race), while a second counter is incremented correctly under lock 1 and
//! per-thread scratch takes the rest of the traffic. The static lockset
//! analysis must flag exactly the unlocked counter; the VM's
//! [`confirm_race`](../../vm/race/fn.confirm_race.html) probe (or a detsan
//! happens-before witness) confirms it.
//!
//! [`build_deadlock`] is detsan's control: thread 0 nests lock 2 inside
//! lock 3's reverse order relative to every other thread, but the two
//! acquisition phases are separated by a barrier so the program can never
//! actually deadlock — and is perfectly race-free, so the static lockset
//! pass stays silent. Only the runtime lock-order graph sees the 2→3 /
//! 3→2 cycle.

use crate::util::scratch_base;
use crate::{ThreadPlan, Workload};
use detlock_ir::builder::FunctionBuilder;
use detlock_ir::inst::{BinOp, CmpOp};
use detlock_ir::types::BarrierId;
use detlock_ir::Module;

/// Shared word incremented without a lock — the race.
pub const RACY_WORD: i64 = 0;
/// Shared word incremented under lock 1 — the control.
pub const LOCKED_WORD: i64 = 8;

/// Racy-counter parameters.
#[derive(Debug, Clone)]
pub struct RacyParams {
    /// Increments per thread.
    pub iters: i64,
}

impl RacyParams {
    /// Parameters scaled from the defaults.
    pub fn scaled(scale: f64) -> RacyParams {
        RacyParams {
            iters: ((600.0 * scale) as i64).max(50),
        }
    }
}

/// Build the racy workload for `threads` threads.
pub fn build(threads: usize, params: &RacyParams) -> Workload {
    let mut module = Module::new();

    // entry(tid, iters)
    let mut fb = FunctionBuilder::new("racy_thread", 2);
    fb.block("entry");
    let head = fb.create_block("loop.cond");
    let body = fb.create_block("loop.body");
    let done = fb.create_block("done");

    let tid = fb.param(0);
    let iters = fb.param(1);
    let scratch = scratch_base(&mut fb, tid);
    let i = fb.iconst(0);
    let racy = fb.iconst(RACY_WORD);
    let locked = fb.iconst(LOCKED_WORD);
    fb.br(head);

    fb.switch_to(head);
    let c = fb.cmp(CmpOp::Lt, i, iters);
    fb.cond_br(c, body, done);

    fb.switch_to(body);
    // The race: unlocked read-modify-write of the shared counter.
    let v = fb.load(racy, 0);
    let v2 = fb.add(v, 1);
    fb.store(racy, 0, v2);
    // The control: the same pattern done right.
    fb.lock(1i64);
    let w = fb.load(locked, 0);
    let w2 = fb.add(w, 1);
    fb.store(locked, 0, w2);
    fb.unlock(1i64);
    // Private traffic that must stay unflagged.
    fb.store(scratch, 0, w2);
    fb.bin_to(BinOp::Add, i, i, 1);
    fb.br(head);

    fb.switch_to(done);
    fb.ret_void();
    let entry = fb.finish_into(&mut module);

    Workload {
        name: "racy-counter",
        module,
        entries: vec![entry],
        threads: (0..threads)
            .map(|t| ThreadPlan {
                func: entry,
                args: vec![t as i64, params.iters],
            })
            .collect(),
        mem_words: 1 << 16,
    }
}

/// Shared word incremented under *both* locks in the deadlock control.
pub const DEADLOCK_WORD: i64 = 16;

/// Build the deadlock-cycle control: lock-order reversal without a
/// reachable deadlock (a barrier separates the two acquisition phases)
/// and without a data race (the shared word is always under both locks).
pub fn build_deadlock(threads: usize) -> Workload {
    let mut module = Module::new();

    // entry(tid)
    let mut fb = FunctionBuilder::new("deadlock_thread", 1);
    fb.block("entry");
    let fwd = fb.create_block("phase1.fwd");
    let skip1 = fb.create_block("phase1.skip");
    let meet = fb.create_block("meet");
    let rev = fb.create_block("phase2.rev");
    let skip2 = fb.create_block("phase2.skip");
    let done = fb.create_block("done");

    let tid = fb.param(0);
    let scratch = scratch_base(&mut fb, tid);
    let counter = fb.iconst(DEADLOCK_WORD);
    let leader = fb.cmp(CmpOp::Eq, tid, 0);
    fb.cond_br(leader, fwd, skip1);

    // Phase 1: only thread 0 nests lock 3 inside lock 2.
    fb.switch_to(fwd);
    fb.lock(2i64);
    fb.lock(3i64);
    let v = fb.load(counter, 0);
    let v2 = fb.add(v, 1);
    fb.store(counter, 0, v2);
    fb.unlock(3i64);
    fb.unlock(2i64);
    fb.br(meet);

    fb.switch_to(skip1);
    fb.store(scratch, 0, tid);
    fb.br(meet);

    // The barrier makes circular wait unreachable: phase 2's reversed
    // nesting can only start after phase 1 fully drained.
    fb.switch_to(meet);
    fb.barrier(BarrierId(0));
    fb.cond_br(leader, skip2, rev);

    // Phase 2: every other thread nests lock 2 inside lock 3.
    fb.switch_to(rev);
    fb.lock(3i64);
    fb.lock(2i64);
    let w = fb.load(counter, 0);
    let w2 = fb.add(w, 1);
    fb.store(counter, 0, w2);
    fb.unlock(2i64);
    fb.unlock(3i64);
    fb.br(done);

    fb.switch_to(skip2);
    fb.store(scratch, 0, tid);
    fb.br(done);

    fb.switch_to(done);
    fb.ret_void();
    let entry = fb.finish_into(&mut module);

    Workload {
        name: "deadlock-cycle",
        module,
        entries: vec![entry],
        threads: (0..threads)
            .map(|t| ThreadPlan {
                func: entry,
                args: vec![t as i64],
            })
            .collect(),
        mem_words: 1 << 16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detlock_ir::verify::verify_module;

    #[test]
    fn builds_and_verifies() {
        let w = build(4, &RacyParams::scaled(1.0));
        assert!(verify_module(&w.module).is_ok());
        assert_eq!(w.threads.len(), 4);
        assert_eq!(w.name, "racy-counter");
    }

    #[test]
    fn deadlock_control_builds_and_verifies() {
        let w = build_deadlock(4);
        assert!(verify_module(&w.module).is_ok());
        assert_eq!(w.threads.len(), 4);
        assert_eq!(w.name, "deadlock-cycle");
    }
}
