//! Shared building blocks for workload generators.

use detlock_ir::builder::FunctionBuilder;
use detlock_ir::inst::{BinOp, CmpOp, Operand};
use detlock_ir::types::{FuncId, Reg};
use detlock_ir::Module;

/// Memory layout constants shared by workloads: the task-queue head lives
/// at word 0; per-thread scratch regions start here, 1024 words each.
pub const QUEUE_HEAD: i64 = 0;
/// Base address of per-thread scratch regions.
pub const SCRATCH_BASE: i64 = 4096;
/// Words per thread scratch region.
pub const SCRATCH_WORDS: i64 = 1024;

/// Deterministic pseudo-random stream for generator-time decisions (block
/// sizes, branch shapes). Not `rand`-seeded: workload shapes must be stable
/// across builds.
#[derive(Clone)]
pub struct GenRng(u64);

impl GenRng {
    /// Create with a fixed seed.
    pub fn new(seed: u64) -> GenRng {
        GenRng(seed.max(1))
    }

    /// Next raw value.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite, never None
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in `lo..hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo);
        lo + self.next() % (hi - lo)
    }
}

/// Emit a straight-line compute sequence of roughly `n` instructions with a
/// realistic mix: ~60% ALU, ~20% loads, ~20% stores (stores matter — they
/// drive the simulated-Kendo retired-store counter). Reads/writes stay
/// within the scratch region addressed by `scratch` (a register holding the
/// region base).
pub fn mixed_compute(fb: &mut FunctionBuilder, n: usize, scratch: Reg) {
    if n == 0 {
        return;
    }
    let acc = fb.iconst(1);
    let mut emitted = 1;
    let mut k = 0i64;
    while emitted < n {
        match k % 5 {
            0 => {
                let v = fb.load(scratch, (k * 7) % SCRATCH_WORDS);
                fb.bin_to(BinOp::Add, acc, acc, Operand::Reg(v));
                emitted += 2;
            }
            1 => {
                fb.store(scratch, (k * 11) % SCRATCH_WORDS, Operand::Reg(acc));
                emitted += 1;
            }
            2 => {
                fb.bin_to(BinOp::Xor, acc, acc, Operand::Imm(k & 0xff));
                emitted += 1;
            }
            3 => {
                fb.bin_to(BinOp::Mul, acc, acc, Operand::Imm(3));
                emitted += 1;
            }
            _ => {
                fb.bin_to(BinOp::Add, acc, acc, Operand::Imm(k));
                emitted += 1;
            }
        }
        k += 1;
    }
}

/// Generate a single-block leaf function of roughly `cost` instructions
/// (always clockable: one path). Takes one scratch-base parameter.
pub fn single_block_leaf(module: &mut Module, name: String, size: usize) -> FuncId {
    let mut fb = FunctionBuilder::new(name, 1);
    fb.block("entry");
    let scratch = fb.param(0);
    mixed_compute(&mut fb, size, scratch);
    fb.ret_void();
    fb.finish_into(module)
}

/// Generate a branchy leaf with two nearly-balanced arms (clockable when
/// `imbalance` is small relative to the arm size, per the paper's
/// mean/2.5 and mean/5 criteria; unclockable when large).
pub fn branchy_leaf(module: &mut Module, name: String, arm: usize, imbalance: usize) -> FuncId {
    let mut fb = FunctionBuilder::new(name, 2); // (scratch, selector)
    fb.block("entry");
    let t = fb.create_block("if.then");
    let e = fb.create_block("if.else");
    let m = fb.create_block("if.end");
    let scratch = fb.param(0);
    let sel = fb.param(1);
    let bit = fb.bin(BinOp::And, sel, 1);
    let c = fb.cmp(CmpOp::Ne, bit, 0);
    fb.cond_br(c, t, e);
    fb.switch_to(t);
    mixed_compute(&mut fb, arm, scratch);
    fb.br(m);
    fb.switch_to(e);
    mixed_compute(&mut fb, arm + imbalance, scratch);
    fb.br(m);
    fb.switch_to(m);
    mixed_compute(&mut fb, 4, scratch);
    fb.ret_void();
    fb.finish_into(module)
}

/// Generate a *laddered* leaf: a chain of `rungs` small balanced diamonds
/// (blocks of 2–6 instructions). High tick density when unoptimized, tight
/// path totals (clockable) — the compute-intensive-but-regular shape the
/// paper credits for Radiosity's Function Clocking gains.
pub fn laddered_leaf(module: &mut Module, name: String, rungs: usize, rng: &mut GenRng) -> FuncId {
    laddered_leaf_with_arms(module, name, rungs, 2, 6, rng)
}

/// [`laddered_leaf`] with explicit arm-size bounds — larger arms make the
/// function compute-dense (radiosity's form-factor kernels) while staying
/// clockable.
pub fn laddered_leaf_with_arms(
    module: &mut Module,
    name: String,
    rungs: usize,
    arm_lo: u64,
    arm_hi: u64,
    rng: &mut GenRng,
) -> FuncId {
    let mut fb = FunctionBuilder::new(name, 2); // (scratch, sel)
    fb.block("entry");
    let scratch = fb.param(0);
    let sel = fb.param(1);
    let acc = fb.iconst(1);
    for rung in 0..rungs {
        let t = fb.create_block(format!("r{rung}.then"));
        let e = fb.create_block(format!("r{rung}.else"));
        let m = fb.create_block(format!("r{rung}.end"));
        let bit = fb.bin(BinOp::Shr, sel, rung as i64 & 31);
        let bit = fb.bin(BinOp::And, bit, 1);
        let c = fb.cmp(CmpOp::Ne, bit, 0);
        fb.cond_br(c, t, e);
        let arm = rng.range(arm_lo, arm_hi) as i64;
        fb.switch_to(t);
        for k in 0..arm {
            fb.bin_to(BinOp::Add, acc, acc, Operand::Imm(k + 1));
        }
        fb.br(m);
        fb.switch_to(e);
        for k in 0..arm {
            fb.bin_to(BinOp::Xor, acc, acc, Operand::Imm(k + 3));
        }
        fb.store(
            scratch,
            (rung as i64 * 3) % SCRATCH_WORDS,
            Operand::Reg(acc),
        );
        fb.br(m);
        fb.switch_to(m);
        fb.bin_to(BinOp::Mul, acc, acc, Operand::Imm(3));
    }
    fb.store(scratch, 1, Operand::Reg(acc));
    fb.ret_void();
    fb.finish_into(module)
}

/// Emit a shared-counter task pop protected by the queue lock:
///
/// ```text
/// lock(lock_id);
/// head = mem[QUEUE_HEAD];
/// task = head; mem[QUEUE_HEAD] = head + 1;
/// unlock(lock_id);
/// return task (caller compares against the total)
/// ```
///
/// The emitted code lives in the current block; returns the register
/// holding the claimed task index.
pub fn pop_task(fb: &mut FunctionBuilder, lock_id: i64) -> Reg {
    let qaddr = fb.iconst(QUEUE_HEAD);
    fb.lock(lock_id);
    let head = fb.load(qaddr, 0);
    let next = fb.add(head, 1);
    fb.store(qaddr, 0, next);
    fb.unlock(lock_id);
    head
}

/// Register holding `SCRATCH_BASE + tid * SCRATCH_WORDS`.
pub fn scratch_base(fb: &mut FunctionBuilder, tid: Reg) -> Reg {
    let off = fb.mul(tid, SCRATCH_WORDS);
    fb.add(off, SCRATCH_BASE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use detlock_ir::verify::verify_module;

    #[test]
    fn gen_rng_is_deterministic() {
        let mut a = GenRng::new(42);
        let mut b = GenRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
        let v = a.range(10, 20);
        assert!((10..20).contains(&v));
    }

    #[test]
    fn mixed_compute_emits_roughly_n() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 1);
        fb.block("entry");
        let s = fb.param(0);
        mixed_compute(&mut fb, 50, s);
        fb.ret_void();
        let id = fb.finish_into(&mut m);
        let n = m.func(id).blocks[0].insts.len();
        assert!((45..=55).contains(&n), "emitted {n}");
        // Contains loads and stores (Kendo needs store traffic).
        let stores = m.func(id).blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, detlock_ir::Inst::Store { .. }))
            .count();
        assert!(stores >= 5, "stores: {stores}");
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn leaves_verify_and_have_expected_shape() {
        let mut m = Module::new();
        let a = single_block_leaf(&mut m, "leaf1".into(), 30);
        let b = branchy_leaf(&mut m, "leaf2".into(), 20, 2);
        assert!(verify_module(&m).is_ok());
        assert_eq!(m.func(a).blocks.len(), 1);
        assert_eq!(m.func(b).blocks.len(), 4);
    }

    #[test]
    fn balanced_branchy_leaf_is_clockable_unbalanced_not() {
        use detlock_passes::cost::CostModel;
        use detlock_passes::opt1::{compute_clocked, ClockableParams};
        let mut m = Module::new();
        branchy_leaf(&mut m, "tight".into(), 30, 3);
        branchy_leaf(&mut m, "loose".into(), 10, 80);
        let cost = CostModel::default();
        let clocked = compute_clocked(&m, &cost, &[], &ClockableParams::default());
        assert!(clocked[0].is_some(), "tight leaf should be clockable");
        assert!(clocked[1].is_none(), "loose leaf should not be clockable");
    }

    #[test]
    fn pop_task_emits_lock_protected_counter() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("popper", 0);
        fb.block("entry");
        let t = pop_task(&mut fb, 0);
        fb.ret(t);
        let id = fb.finish_into(&mut m);
        assert!(verify_module(&m).is_ok());
        let b = &m.func(id).blocks[0];
        assert!(b
            .insts
            .iter()
            .any(|i| matches!(i, detlock_ir::Inst::Lock { .. })));
        assert!(b
            .insts
            .iter()
            .any(|i| matches!(i, detlock_ir::Inst::Unlock { .. })));
    }
}
