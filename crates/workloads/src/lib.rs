//! # detlock-workloads
//!
//! IR workload generators with the synchronization and control-flow shape
//! of the five SPLASH-2 benchmarks the DetLock paper evaluates (the
//! originals are C programs; what the instrumentation and the deterministic
//! runtime respond to is *shape* — block sizes, branch density, loop
//! nests, clockable-function structure, and lock frequency — which these
//! generators reproduce; see DESIGN.md for the per-benchmark mapping):
//!
//! | Generator | Shape | Paper locks/sec |
//! |---|---|---|
//! | [`ocean`] | huge straight-line sweeps + barriers, rare lock | 343 |
//! | [`raytrace`] | tile queue + branchy descent + shading leaves | 227,835 |
//! | [`water`] | tiny hot inner `for` with an `if`, molecule locks | 126,034 |
//! | [`radiosity`] | task queue at very high rate, clockable compute | 2,211,621 |
//! | [`volrend`] | ray batches + opacity ladder | 443,070 |
//!
//! [`micro`] generates random structured CFGs for property tests;
//! [`racy`] is a deliberately racy counter used as detlint's negative
//! control (it is *not* part of [`all_benchmarks`]).

#![warn(missing_docs)]

pub mod micro;
pub mod ocean;
pub mod racy;
pub mod radiosity;
pub mod raytrace;
pub mod util;
pub mod volrend;
pub mod water;

use detlock_ir::types::FuncId;
use detlock_ir::Module;

/// One thread of a workload: entry function + arguments.
#[derive(Debug, Clone)]
pub struct ThreadPlan {
    /// Entry function.
    pub func: FuncId,
    /// Arguments for the entry function's parameters.
    pub args: Vec<i64>,
}

/// A buildable workload: the module, its thread plans, and the entry
/// functions that the instrumentation pass must not clock.
pub struct Workload {
    /// Benchmark name as printed in the paper's tables.
    pub name: &'static str,
    /// The program.
    pub module: Module,
    /// Entry functions (excluded from Function Clocking).
    pub entries: Vec<FuncId>,
    /// One plan per thread.
    pub threads: Vec<ThreadPlan>,
    /// Shared-memory size the workload expects.
    pub mem_words: usize,
}

/// Build all five Table I workloads at `scale` (1.0 = the sizes used for
/// the shipped experiment numbers) for `threads` threads.
pub fn all_benchmarks(threads: usize, scale: f64) -> Vec<Workload> {
    vec![
        ocean::build(threads, &ocean::OceanParams::scaled(scale)),
        raytrace::build(threads, &raytrace::RaytraceParams::scaled(scale)),
        water::build(threads, &water::WaterParams::scaled(scale)),
        radiosity::build(threads, &radiosity::RadiosityParams::scaled(scale)),
        volrend::build(threads, &volrend::VolrendParams::scaled(scale)),
    ]
}

/// Build the *Kendo dataset* variant of a benchmark — the paper compares
/// against Kendo's published numbers, which were measured on data sets with
/// *lower* lock frequencies than the ones used for Table I ("For Radiosity
/// and Volrend, we could not find matching data sets ... and instead used
/// data sets with higher lock frequencies than Kendo", §V-C). Table II's
/// Kendo locks/sec column: ocean 279, raytrace 216,979, water 143,202,
/// radiosity 939,771, volrend 79,612.
pub fn kendo_dataset(name: &str, threads: usize, scale: f64) -> Option<Workload> {
    match name {
        "ocean" => by_name(name, threads, scale),
        "raytrace" => {
            // ~217k locks/sec: bigger tiles.
            let mut p = raytrace::RaytraceParams::scaled(scale);
            p.pixels_per_tile = 104;
            p.tiles = (p.tiles * 64 / 104).max(8);
            Some(raytrace::build(threads, &p))
        }
        "water-nsq" | "water" => by_name(name, threads, scale),
        "radiosity" => {
            // ~940k locks/sec: double the subdivision work per task.
            let mut p = radiosity::RadiosityParams::scaled(scale);
            p.kinds = 8;
            p.tasks = (p.tasks / 2).max(16);
            Some(radiosity::build_with_iters(threads, &p, 15))
        }
        "volrend" => {
            // ~80k locks/sec: much larger ray batches.
            let mut p = volrend::VolrendParams::scaled(scale);
            p.rays_per_batch = 40;
            p.batches = (p.batches / 5).max(8);
            Some(volrend::build(threads, &p))
        }
        _ => None,
    }
}

/// Build one benchmark by its Table I name.
pub fn by_name(name: &str, threads: usize, scale: f64) -> Option<Workload> {
    match name {
        "ocean" => Some(ocean::build(threads, &ocean::OceanParams::scaled(scale))),
        "raytrace" => Some(raytrace::build(
            threads,
            &raytrace::RaytraceParams::scaled(scale),
        )),
        "water-nsq" | "water" => Some(water::build(threads, &water::WaterParams::scaled(scale))),
        "radiosity" => Some(radiosity::build(
            threads,
            &radiosity::RadiosityParams::scaled(scale),
        )),
        "volrend" => Some(volrend::build(
            threads,
            &volrend::VolrendParams::scaled(scale),
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detlock_ir::verify::verify_module;

    #[test]
    fn all_benchmarks_build_and_verify() {
        let ws = all_benchmarks(4, 0.05);
        assert_eq!(ws.len(), 5);
        for w in &ws {
            verify_module(&w.module).unwrap_or_else(|e| panic!("{}: {:?}", w.name, e));
            assert_eq!(w.threads.len(), 4);
            assert!(!w.entries.is_empty());
        }
    }

    #[test]
    fn by_name_resolves_paper_names() {
        for n in ["ocean", "raytrace", "water-nsq", "radiosity", "volrend"] {
            assert!(by_name(n, 2, 0.05).is_some(), "{n}");
        }
        assert!(by_name("fft", 2, 0.05).is_none());
    }
}
