//! Micro CFG generators used by property tests and the pass test-suite:
//! random structured control flow (nested diamonds, loops, call chains)
//! over which pass invariants must hold.

use crate::util::GenRng;
use detlock_ir::builder::FunctionBuilder;
use detlock_ir::inst::{BinOp, CmpOp, Operand};
use detlock_ir::types::FuncId;
use detlock_ir::Module;

/// Shape knobs for random structured functions.
#[derive(Debug, Clone)]
pub struct MicroParams {
    /// Nesting depth of diamonds/loops.
    pub depth: u32,
    /// Max instructions per straight-line run.
    pub max_ops: u32,
    /// Probability (percent) of a loop at each level, else a diamond.
    pub loop_pct: u32,
}

impl Default for MicroParams {
    fn default() -> Self {
        MicroParams {
            depth: 3,
            max_ops: 12,
            loop_pct: 30,
        }
    }
}

/// Generate one random structured function (no calls) and add it to the
/// module. The function takes one data parameter used for branch
/// conditions, so control flow is input-dependent but loop trip counts are
/// bounded.
pub fn random_function(
    module: &mut Module,
    name: String,
    rng: &mut GenRng,
    params: &MicroParams,
) -> FuncId {
    let mut fb = FunctionBuilder::new(name, 1);
    fb.block("entry");
    let data = fb.param(0);
    let acc = fb.iconst(0);
    let mut next_region = 0u32;
    emit_region(
        &mut fb,
        rng,
        params,
        params.depth,
        data,
        acc,
        &mut next_region,
    );
    fb.ret(acc);
    fb.finish_into(module)
}

fn emit_ops(fb: &mut FunctionBuilder, rng: &mut GenRng, max_ops: u32, acc: detlock_ir::Reg) {
    let n = rng.range(1, max_ops as u64 + 1);
    for k in 0..n {
        match k % 3 {
            0 => fb.bin_to(BinOp::Add, acc, acc, Operand::Imm(k as i64 + 1)),
            1 => fb.bin_to(BinOp::Xor, acc, acc, Operand::Imm(0x55)),
            _ => fb.bin_to(BinOp::Mul, acc, acc, Operand::Imm(3)),
        }
    }
}

fn emit_region(
    fb: &mut FunctionBuilder,
    rng: &mut GenRng,
    params: &MicroParams,
    depth: u32,
    data: detlock_ir::Reg,
    acc: detlock_ir::Reg,
    next_region: &mut u32,
) {
    emit_ops(fb, rng, params.max_ops, acc);
    if depth == 0 {
        return;
    }
    // Region counter keeps block names unique (two sibling regions at the
    // same depth would otherwise collide, which the verifier now rejects).
    let id = *next_region;
    *next_region += 1;
    if rng.range(0, 100) < params.loop_pct as u64 {
        // Bounded loop: i in 0..(data & 7).
        let head = fb.create_block(format!("loop.head.{id}"));
        let body = fb.create_block(format!("loop.body.{id}"));
        let exit = fb.create_block(format!("loop.exit.{id}"));
        let i = fb.iconst(0);
        let bound = fb.bin(BinOp::And, data, 7);
        fb.br(head);
        fb.switch_to(head);
        let c = fb.cmp(CmpOp::Lt, i, bound);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        emit_region(fb, rng, params, depth - 1, data, acc, next_region);
        fb.bin_to(BinOp::Add, i, i, 1);
        fb.br(head);
        fb.switch_to(exit);
        emit_ops(fb, rng, params.max_ops, acc);
    } else {
        // Diamond.
        let t = fb.create_block(format!("then.{id}"));
        let e = fb.create_block(format!("else.{id}"));
        let m = fb.create_block(format!("merge.{id}"));
        let bit = fb.bin(BinOp::And, data, depth as i64 + 1);
        let c = fb.cmp(CmpOp::Ne, bit, 0);
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        emit_region(fb, rng, params, depth - 1, data, acc, next_region);
        fb.br(m);
        fb.switch_to(e);
        emit_region(fb, rng, params, depth - 1, data, acc, next_region);
        fb.br(m);
        fb.switch_to(m);
        emit_ops(fb, rng, params.max_ops, acc);
    }
}

/// A module of `n` random functions plus a driver that calls them all in a
/// loop — used by end-to-end pass/VM property tests.
pub fn random_module(seed: u64, n: usize, params: &MicroParams) -> (Module, FuncId) {
    let mut module = Module::new();
    let mut rng = GenRng::new(seed);
    let funcs: Vec<FuncId> = (0..n)
        .map(|i| random_function(&mut module, format!("rf{i}"), &mut rng, params))
        .collect();

    let mut fb = FunctionBuilder::new("driver", 2); // (data, iters)
    fb.block("entry");
    let head = fb.create_block("head");
    let body = fb.create_block("body");
    let done = fb.create_block("done");
    let data = fb.param(0);
    let iters = fb.param(1);
    let i = fb.iconst(0);
    fb.br(head);
    fb.switch_to(head);
    let c = fb.cmp(CmpOp::Lt, i, iters);
    fb.cond_br(c, body, done);
    fb.switch_to(body);
    for f in &funcs {
        let arg = fb.add(data, Operand::Reg(i));
        fb.call_void(*f, vec![Operand::Reg(arg)]);
    }
    fb.bin_to(BinOp::Add, i, i, 1);
    fb.br(head);
    fb.switch_to(done);
    fb.ret_void();
    let driver = fb.finish_into(&mut module);
    (module, driver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use detlock_ir::verify::verify_module;

    #[test]
    fn random_functions_verify() {
        for seed in 1..30 {
            let (m, _) = random_module(seed, 3, &MicroParams::default());
            verify_module(&m).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
        }
    }

    #[test]
    fn block_names_are_unique() {
        for seed in 1..30 {
            let (m, _) = random_module(seed, 3, &MicroParams::default());
            for f in &m.functions {
                let mut names: Vec<&str> = f.blocks.iter().map(|b| b.name.as_str()).collect();
                names.sort_unstable();
                let before = names.len();
                names.dedup();
                assert_eq!(before, names.len(), "seed {seed}, fn {}", f.name);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, _) = random_module(7, 2, &MicroParams::default());
        let (b, _) = random_module(7, 2, &MicroParams::default());
        assert_eq!(a.functions.len(), b.functions.len());
        for (fa, fb) in a.functions.iter().zip(&b.functions) {
            assert_eq!(fa.blocks.len(), fb.blocks.len());
            for (ba, bb) in fa.blocks.iter().zip(&fb.blocks) {
                assert_eq!(ba.insts, bb.insts);
            }
        }
    }
}
