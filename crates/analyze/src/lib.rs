//! # detlock-analyze
//!
//! Static analysis over DetLock IR, on the two axes the system's guarantee
//! actually rests on:
//!
//! 1. **Lockset race detection** ([`races`]): DetLock (after Kendo) provides
//!    *weak* determinism — the lock-acquisition order is deterministic **iff
//!    the program is race-free**. An Eraser-style interprocedural lockset
//!    analysis finds shared-memory accesses not consistently protected by a
//!    deterministic lock and reports them before the runtime silently voids
//!    its own guarantee.
//! 2. **Clock-placement translation validation** ([`validate`]): O1–O4
//!    rewrite tick placements aggressively; the validator checks the emitted
//!    module against the pipeline's [`PlanCert`](detlock_passes::PlanCert)
//!    claim — structural equivalence modulo ticks, tick placement/amounts,
//!    per-path clock sums within the claimed divergence bound, clocked-mean
//!    re-derivation, and no tick sunk into a lock-held region.
//!
//! Both produce [`Finding`]s that render human-readable (`Display`) and as
//! JSON (`detlock-shim`), consumed by the `detlint` CLI in `detlock-bench`.
//!
//! [`triage`] joins the static findings against `detsan` dynamic reports
//! (see [`detlock_vm::sanitizer`]): every `race` / `may-race` becomes
//! `confirmed`, `unobserved`, or `refuted-by-HB`.

#![warn(missing_docs)]

pub mod absval;
pub mod races;
pub mod triage;
pub mod validate;

use detlock_shim::json::{Json, ToJson};

/// How bad a finding is. Ordering: `Error > Warning > Info`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note (e.g. a lock id that varies per thread).
    Info,
    /// Possible problem the analysis could not confirm (a "may" race).
    Warning,
    /// Confirmed problem: a race, or a validation failure.
    Error,
}

impl Severity {
    /// Lowercase label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One diagnostic from either analysis.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Severity.
    pub severity: Severity,
    /// Stable rule id, e.g. `race`, `may-race`, `lock-across-barrier`,
    /// `validate/path-sum`, `validate/structure`.
    pub rule: &'static str,
    /// Function the finding is in.
    pub func: String,
    /// Block label (with its id), when the finding points at a block.
    pub block: Option<String>,
    /// Instruction index within the block, when it points at an instruction.
    pub inst: Option<usize>,
    /// Human-readable description.
    pub message: String,
    /// Related context lines: the conflicting access site, the lock history
    /// that emptied the set, the diverging path, …
    pub related: Vec<String>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}] {}", self.severity.label(), self.rule, self.func)?;
        if let Some(b) = &self.block {
            write!(f, "/{b}")?;
        }
        if let Some(i) = self.inst {
            write!(f, "#{i}")?;
        }
        write!(f, ": {}", self.message)?;
        for r in &self.related {
            write!(f, "\n    | {r}")?;
        }
        Ok(())
    }
}

impl ToJson for Finding {
    fn to_json(&self) -> Json {
        Json::obj([
            ("severity", self.severity.label().to_json()),
            ("rule", self.rule.to_json()),
            ("func", self.func.to_json()),
            ("block", self.block.to_json()),
            ("inst", self.inst.to_json()),
            ("message", self.message.to_json()),
            ("related", self.related.to_json()),
        ])
    }
}

/// A batch of findings with counting helpers.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, in discovery order.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Number of findings at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == sev).count()
    }

    /// Whether the report is acceptable: no errors, and no warnings either
    /// when `deny_warnings` is set.
    pub fn ok(&self, deny_warnings: bool) -> bool {
        self.count(Severity::Error) == 0 && (!deny_warnings || self.count(Severity::Warning) == 0)
    }

    /// Merge another report's findings into this one.
    pub fn extend(&mut self, other: Report) {
        self.findings.extend(other.findings);
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        Ok(())
    }
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        Json::obj([
            ("errors", self.count(Severity::Error).to_json()),
            ("warnings", self.count(Severity::Warning).to_json()),
            ("infos", self.count(Severity::Info).to_json()),
            ("findings", self.findings.to_json()),
        ])
    }
}
