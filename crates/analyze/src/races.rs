//! Eraser-style interprocedural lockset race detection over DetLock IR.
//!
//! DetLock's determinism guarantee is *weak* (paper §II): lock acquisition
//! order is reproducible **iff the program is data-race-free**. A racy
//! store slips past the deterministic lock arbitration entirely and makes
//! the final memory image depend on the jitter seed. This pass finds such
//! stores before a run does.
//!
//! The analysis is a combined dataflow over two facts per program point:
//! the [`AbsVal`] thread-dependence class of every register, and the
//! *lockset* — the set of deterministic locks provably held. Shared-memory
//! accesses (addresses not derived injectively from the thread id) are
//! collected together with their locksets; per shared word, the candidate
//! lockset is intersected across all access sites (Eraser's discipline),
//! and an empty intersection with at least one write from two reachable
//! threads is a race.
//!
//! Interprocedural treatment is context-insensitive and bounded: each
//! function gets one entry abstraction, joined over thread seeds and all
//! observed call sites (values pointwise-joined, locksets intersected,
//! symbolic caller locks dropped at the boundary), iterated to fixpoint
//! over the callgraph. Callees are summarized by their *lock effect*
//! (balanced, or clobbering with a known residue); callgraph cycles get the
//! pessimistic summary.

use crate::absval::AbsVal;
use crate::{Finding, Report, Severity};
use detlock_ir::analysis::callgraph::CallGraph;
use detlock_ir::inst::{Inst, Operand, Terminator};
use detlock_ir::module::Module;
use detlock_ir::types::{BlockId, FuncId, Reg};
use std::collections::BTreeMap;

/// A statically-known deterministic lock identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockTok {
    /// Lock id is the constant.
    Const(i64),
    /// Lock id is the (thread-independent or unknown) value of a register —
    /// the "register-derived lock" heuristic: accesses guarded by the same
    /// naming site are assumed protected because data addresses computed
    /// from the same value collide exactly when the lock ids do.
    Sym(FuncId, Reg),
}

impl LockTok {
    fn describe(&self, module: &Module) -> String {
        match self {
            LockTok::Const(v) => format!("lock {v}"),
            LockTok::Sym(f, r) => format!("lock[{r}@{}]", module.func(*f).name),
        }
    }
}

fn describe_locks(locks: &[LockTok], module: &Module) -> String {
    if locks.is_empty() {
        "no locks".to_string()
    } else {
        locks
            .iter()
            .map(|t| t.describe(module))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Where a fact was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Site {
    func: FuncId,
    block: BlockId,
    inst: usize,
}

/// Address classification of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AddrClass {
    /// A concrete shared word.
    Concrete(i64),
    /// Thread-independent but unknown (may collide across threads).
    Shared,
    /// Unclassifiable (may be shared).
    May,
    /// Injective in the thread id: private, never racy.
    Private,
}

/// Lock effect of calling a function.
#[derive(Debug, Clone)]
struct LockSummary {
    /// The callee may release or invalidate locks the caller holds
    /// (barrier inside, unbalanced unlock, callgraph cycle).
    kills: bool,
    /// Constant locks the callee is left holding on return.
    adds: Vec<LockTok>,
}

impl LockSummary {
    fn pessimistic() -> LockSummary {
        LockSummary {
            kills: true,
            adds: Vec::new(),
        }
    }
}

/// Dataflow state at one program point.
#[derive(Debug, Clone, PartialEq)]
struct LocalState {
    vals: Vec<AbsVal>,
    /// Sorted, deduplicated.
    locks: Vec<LockTok>,
    /// Whether locks inherited from the caller are still intact.
    alive: bool,
}

impl LocalState {
    fn join_from(&mut self, other: &LocalState) -> bool {
        let mut changed = false;
        for (a, &b) in self.vals.iter_mut().zip(&other.vals) {
            let j = a.join(b);
            if j != *a {
                *a = j;
                changed = true;
            }
        }
        let before = self.locks.len();
        self.locks.retain(|t| other.locks.contains(t));
        if self.locks.len() != before {
            changed = true;
        }
        if self.alive && !other.alive {
            self.alive = false;
            changed = true;
        }
        changed
    }
}

fn insert_tok(locks: &mut Vec<LockTok>, t: LockTok) {
    if let Err(pos) = locks.binary_search(&t) {
        locks.insert(pos, t);
    }
}

fn remove_tok(locks: &mut Vec<LockTok>, t: LockTok) -> bool {
    if let Ok(pos) = locks.binary_search(&t) {
        locks.remove(pos);
        true
    } else {
        false
    }
}

/// Observer for facts produced while stepping instructions. The fixpoint
/// phase listens only to call sites; the reporting phase listens to
/// accesses and findings.
trait Events {
    fn call_site(&mut self, _callee: FuncId, _args: Vec<AbsVal>, _locks: &[LockTok]) {}
    fn access(&mut self, _site: Site, _write: bool, _addr: AddrClass, _locks: &[LockTok]) {}
    fn finding(&mut self, _f: Finding) {}
}

struct Quiet;
impl Events for Quiet {}

/// Abstract-interpret one instruction.
fn step(
    fid: FuncId,
    site: Site,
    inst: &Inst,
    st: &mut LocalState,
    summaries: &[LockSummary],
    ev: &mut dyn Events,
) {
    let classify = |addr: Reg, offset: i64, vals: &[AbsVal]| -> AddrClass {
        match vals[addr.index()] {
            AbsVal::Const(v) => AddrClass::Concrete(v.wrapping_add(offset)),
            AbsVal::Uniform => AddrClass::Shared,
            AbsVal::Distinct => AddrClass::Private,
            AbsVal::Unknown | AbsVal::Bot => AddrClass::May,
        }
    };
    let resolve = |id: &Operand, st: &LocalState| -> Option<LockTok> {
        match id {
            Operand::Imm(v) => Some(LockTok::Const(*v)),
            Operand::Reg(r) => match st.vals[r.index()] {
                AbsVal::Const(v) => Some(LockTok::Const(v)),
                AbsVal::Uniform | AbsVal::Unknown => Some(LockTok::Sym(fid, *r)),
                AbsVal::Distinct | AbsVal::Bot => None,
            },
        }
    };

    let mut new_val: Option<(Reg, AbsVal)> = None;
    match inst {
        Inst::Const { dst, value } => new_val = Some((*dst, AbsVal::Const(*value))),
        Inst::Mov { dst, src } => new_val = Some((*dst, AbsVal::of_operand(src, &st.vals))),
        Inst::Bin { op, dst, lhs, rhs } => {
            let v = AbsVal::bin(*op, st.vals[lhs.index()], AbsVal::of_operand(rhs, &st.vals));
            new_val = Some((*dst, v));
        }
        Inst::Cmp { op, dst, lhs, rhs } => {
            let v = AbsVal::cmp(*op, st.vals[lhs.index()], AbsVal::of_operand(rhs, &st.vals));
            new_val = Some((*dst, v));
        }
        Inst::Load { dst, addr, offset } => {
            ev.access(site, false, classify(*addr, *offset, &st.vals), &st.locks);
            new_val = Some((*dst, AbsVal::Unknown));
        }
        Inst::Store { addr, offset, .. } => {
            ev.access(site, true, classify(*addr, *offset, &st.vals), &st.locks);
        }
        Inst::Call { func, args, dst } => {
            let av: Vec<AbsVal> = args
                .iter()
                .map(|a| AbsVal::of_operand(a, &st.vals))
                .collect();
            ev.call_site(*func, av, &st.locks);
            let summary = &summaries[func.index()];
            if summary.kills {
                if !st.locks.is_empty() {
                    ev.finding(Finding {
                        severity: Severity::Warning,
                        rule: "unbalanced-callee",
                        func: String::new(), // filled by caller context below
                        block: None,
                        inst: Some(site.inst),
                        message: format!(
                            "call with locks held, but the callee (function {}) \
                             does not preserve its caller's locks",
                            func.index()
                        ),
                        related: Vec::new(),
                    });
                }
                st.locks.clear();
                st.alive = false;
            }
            for &t in &summary.adds {
                insert_tok(&mut st.locks, t);
            }
            if let Some(d) = dst {
                new_val = Some((*d, AbsVal::Unknown));
            }
        }
        Inst::CallBuiltin { dst, .. } => {
            if let Some(d) = dst {
                new_val = Some((*d, AbsVal::Unknown));
            }
        }
        Inst::Tick { .. } | Inst::TickDyn { .. } => {}
        Inst::Lock { id } => match resolve(id, st) {
            Some(t) => insert_tok(&mut st.locks, t),
            None => ev.finding(Finding {
                severity: Severity::Info,
                rule: "thread-varying-lock",
                func: String::new(),
                block: None,
                inst: Some(site.inst),
                message: "lock id varies per thread: acquiring it provides no \
                          mutual exclusion for shared data"
                    .to_string(),
                related: Vec::new(),
            }),
        },
        Inst::Unlock { id } => {
            if let Some(t) = resolve(id, st) {
                if !remove_tok(&mut st.locks, t) {
                    // Releasing a lock the analysis never saw acquired: the
                    // caller's locks can no longer be trusted.
                    st.alive = false;
                }
            }
        }
        Inst::Barrier { .. } => {
            if !st.locks.is_empty() {
                ev.finding(Finding {
                    severity: Severity::Warning,
                    rule: "lock-across-barrier",
                    func: String::new(),
                    block: None,
                    inst: Some(site.inst),
                    message: "barrier reached while holding locks (deadlock-prone \
                              and breaks the lockset discipline)"
                        .to_string(),
                    related: Vec::new(),
                });
            }
            st.locks.clear();
            st.alive = false;
        }
    }

    if let Some((dst, v)) = new_val {
        st.vals[dst.index()] = v;
        // The register may have been naming a symbolic lock.
        st.locks
            .retain(|t| !matches!(t, LockTok::Sym(f, r) if *f == fid && *r == dst));
    }
}

/// Run the intraprocedural fixpoint for `fid` from `entry`, returning the
/// stable block-entry states (None = unreachable).
fn local_fixpoint(
    module: &Module,
    fid: FuncId,
    entry: LocalState,
    summaries: &[LockSummary],
    ev: &mut dyn Events,
) -> Vec<Option<LocalState>> {
    let func = module.func(fid);
    let n = func.blocks.len();
    let mut inputs: Vec<Option<LocalState>> = vec![None; n];
    inputs[func.entry().index()] = Some(entry);
    let mut work: Vec<BlockId> = vec![func.entry()];
    // Safety bound far above what the finite lattice can need.
    let mut budget = 64 * n.max(1) * func.num_regs.max(1) as usize;
    while let Some(b) = work.pop() {
        if budget == 0 {
            break;
        }
        budget -= 1;
        let mut st = inputs[b.index()].clone().expect("queued block has input");
        let block = func.block(b);
        for (i, inst) in block.insts.iter().enumerate() {
            let site = Site {
                func: fid,
                block: b,
                inst: i,
            };
            step(fid, site, inst, &mut st, summaries, ev);
        }
        for succ in block.successors() {
            match &mut inputs[succ.index()] {
                Some(existing) => {
                    if existing.join_from(&st) && !work.contains(&succ) {
                        work.push(succ);
                    }
                }
                slot @ None => {
                    *slot = Some(st.clone());
                    work.push(succ);
                }
            }
        }
    }
    inputs
}

/// Compute per-function lock-effect summaries bottom-up over the callgraph.
fn compute_summaries(module: &Module, cg: &CallGraph) -> Vec<LockSummary> {
    let mut summaries: Vec<LockSummary> = vec![LockSummary::pessimistic(); module.functions.len()];
    for fid in cg.bottom_up() {
        if cg.in_cycle(fid) {
            continue; // stays pessimistic
        }
        let func = module.func(fid);
        let mut entry = LocalState {
            vals: vec![AbsVal::Bot; func.num_regs as usize],
            locks: Vec::new(),
            alive: true,
        };
        for p in 0..func.params as usize {
            entry.vals[p] = AbsVal::Unknown;
        }
        let inputs = local_fixpoint(module, fid, entry, &summaries, &mut Quiet);
        let mut kills = false;
        let mut adds: Option<Vec<LockTok>> = None;
        for (b, block) in func.iter_blocks() {
            if !matches!(block.term, Terminator::Ret { .. }) {
                continue;
            }
            let Some(input) = &inputs[b.index()] else {
                continue;
            };
            let mut st = input.clone();
            for (i, inst) in block.insts.iter().enumerate() {
                let site = Site {
                    func: fid,
                    block: b,
                    inst: i,
                };
                step(fid, site, inst, &mut st, &summaries, &mut Quiet);
            }
            if !st.alive {
                kills = true;
            }
            if st.locks.iter().any(|t| matches!(t, LockTok::Sym(..))) {
                // A symbolic lock held across return cannot be named in the
                // caller's frame.
                kills = true;
            }
            st.locks.retain(|t| matches!(t, LockTok::Const(_)));
            match &mut adds {
                Some(acc) => acc.retain(|t| st.locks.contains(t)),
                None => adds = Some(st.locks),
            }
        }
        summaries[fid.index()] = LockSummary {
            kills,
            adds: adds.unwrap_or_default(),
        };
    }
    summaries
}

/// Per-function interprocedural facts.
struct FuncInfo {
    reached: bool,
    entry_vals: Vec<AbsVal>,
    /// None = no caller observed yet (top for the intersection).
    entry_locks: Option<Vec<LockTok>>,
    /// Bitmask of thread ids (capped at 64) that can reach this function.
    threads: u64,
    block_in: Vec<Option<LocalState>>,
}

/// Forwards call-site contributions into `FuncInfo`s during the
/// interprocedural fixpoint.
struct CallCollector<'a> {
    infos: &'a mut Vec<FuncInfo>,
    caller_threads: u64,
    changed: Vec<FuncId>,
}

impl Events for CallCollector<'_> {
    fn call_site(&mut self, callee: FuncId, args: Vec<AbsVal>, locks: &[LockTok]) {
        let info = &mut self.infos[callee.index()];
        let mut changed = !info.reached;
        info.reached = true;
        for (i, &v) in args.iter().enumerate() {
            if i >= info.entry_vals.len() {
                break;
            }
            let j = info.entry_vals[i].join(v);
            if j != info.entry_vals[i] {
                info.entry_vals[i] = j;
                changed = true;
            }
        }
        // Symbolic caller locks are register names in the caller's frame;
        // they cannot protect anything the callee does.
        let const_locks: Vec<LockTok> = locks
            .iter()
            .copied()
            .filter(|t| matches!(t, LockTok::Const(_)))
            .collect();
        match &mut info.entry_locks {
            Some(existing) => {
                let before = existing.len();
                existing.retain(|t| const_locks.contains(t));
                if existing.len() != before {
                    changed = true;
                }
            }
            slot @ None => {
                *slot = Some(const_locks);
                changed = true;
            }
        }
        if info.threads | self.caller_threads != info.threads {
            info.threads |= self.caller_threads;
            changed = true;
        }
        if changed && !self.changed.contains(&callee) {
            self.changed.push(callee);
        }
    }
}

/// One collected shared-memory access.
#[derive(Debug, Clone)]
struct AccessRec {
    site: Site,
    write: bool,
    addr: AddrClass,
    locks: Vec<LockTok>,
    threads: u64,
}

/// Collects accesses and site findings during the reporting pass.
struct Collector {
    accesses: Vec<AccessRec>,
    findings: Vec<Finding>,
    threads: u64,
}

impl Events for Collector {
    fn access(&mut self, site: Site, write: bool, addr: AddrClass, locks: &[LockTok]) {
        if addr == AddrClass::Private {
            return;
        }
        self.accesses.push(AccessRec {
            site,
            write,
            addr,
            locks: locks.to_vec(),
            threads: self.threads,
        });
    }
    fn finding(&mut self, f: Finding) {
        // Deduplicate repeats of the same site/rule (a block is stepped once
        // per reporting pass, but keep this robust).
        if !self
            .findings
            .iter()
            .any(|g| g.rule == f.rule && g.inst == f.inst && g.block == f.block)
        {
            self.findings.push(f);
        }
    }
}

fn site_label(module: &Module, s: Site) -> (String, String) {
    let f = module.func(s.func);
    (f.name.clone(), f.block(s.block).name.clone())
}

fn describe_site(module: &Module, a: &AccessRec) -> String {
    let (fname, bname) = site_label(module, a.site);
    format!(
        "{} at {fname}/{bname}#{} holding {}",
        if a.write { "write" } else { "read" },
        a.site.inst,
        describe_locks(&a.locks, module)
    )
}

/// Can two threads be at `a` and `b` simultaneously?
fn concurrent(a: &AccessRec, b: &AccessRec) -> bool {
    if a.site == b.site {
        a.threads.count_ones() >= 2
    } else {
        (a.threads | b.threads).count_ones() >= 2
    }
}

fn disjoint(a: &[LockTok], b: &[LockTok]) -> bool {
    a.iter().all(|t| !b.contains(t))
}

/// Run the race analysis over `module` for the given threads
/// (`(entry function, argument values)` per thread).
pub fn analyze_races(module: &Module, threads: &[(FuncId, Vec<i64>)]) -> Report {
    let mut report = Report::default();
    if threads.len() < 2 {
        return report; // no concurrency, no races
    }

    let cg = CallGraph::compute(module);
    let summaries = compute_summaries(module, &cg);

    let mut infos: Vec<FuncInfo> = module
        .functions
        .iter()
        .map(|f| FuncInfo {
            reached: false,
            entry_vals: vec![AbsVal::Bot; f.params as usize],
            entry_locks: None,
            threads: 0,
            block_in: Vec::new(),
        })
        .collect();

    // Seed thread entries: per entry function, the per-parameter columns of
    // the thread argument matrix.
    let mut work: Vec<FuncId> = Vec::new();
    for (fid, func) in module.iter_funcs() {
        let rows: Vec<&Vec<i64>> = threads
            .iter()
            .filter(|(f, _)| *f == fid)
            .map(|(_, args)| args)
            .collect();
        if rows.is_empty() {
            continue;
        }
        let info = &mut infos[fid.index()];
        info.reached = true;
        info.entry_locks = Some(Vec::new());
        for p in 0..func.params as usize {
            let column: Vec<i64> = rows.iter().map(|args| args[p]).collect();
            info.entry_vals[p] = info.entry_vals[p].join(AbsVal::seed(&column));
        }
        for (t, (f, _)) in threads.iter().enumerate() {
            if *f == fid {
                info.threads |= 1u64 << t.min(63);
            }
        }
        work.push(fid);
    }

    // Interprocedural fixpoint: both lattices are finite (value chains of
    // height ≤ 3 per register, locksets only shrink), so this terminates;
    // the budget is a defensive backstop.
    let mut budget = 64 * module.functions.len().max(1);
    while let Some(fid) = work.pop() {
        if budget == 0 {
            report.findings.push(Finding {
                severity: Severity::Warning,
                rule: "analysis-budget",
                func: String::new(),
                block: None,
                inst: None,
                message: "interprocedural fixpoint budget exhausted; results may \
                          be incomplete"
                    .to_string(),
                related: Vec::new(),
            });
            break;
        }
        budget -= 1;
        let func = module.func(fid);
        let info = &infos[fid.index()];
        let mut entry = LocalState {
            vals: vec![AbsVal::Bot; func.num_regs as usize],
            locks: info.entry_locks.clone().unwrap_or_default(),
            alive: true,
        };
        entry.vals[..func.params as usize].copy_from_slice(&info.entry_vals);
        let caller_threads = info.threads;
        let mut collector = CallCollector {
            infos: &mut infos,
            caller_threads,
            changed: Vec::new(),
        };
        let inputs = local_fixpoint(module, fid, entry, &summaries, &mut collector);
        let changed = collector.changed;
        infos[fid.index()].block_in = inputs;
        for c in changed {
            if !work.contains(&c) {
                work.push(c);
            }
        }
    }

    // Reporting pass: step every reached function once from its stable
    // block-entry states, collecting accesses and site diagnostics.
    let mut accesses: Vec<AccessRec> = Vec::new();
    for (fid, func) in module.iter_funcs() {
        let info = &infos[fid.index()];
        if !info.reached || info.block_in.is_empty() {
            continue;
        }
        let mut collector = Collector {
            accesses: Vec::new(),
            findings: Vec::new(),
            threads: info.threads,
        };
        for (b, block) in func.iter_blocks() {
            let Some(input) = &info.block_in[b.index()] else {
                continue;
            };
            let mut st = input.clone();
            for (i, inst) in block.insts.iter().enumerate() {
                let site = Site {
                    func: fid,
                    block: b,
                    inst: i,
                };
                // Findings carry the block context; fill it in here where
                // the block name is known.
                let before = collector.findings.len();
                step(fid, site, inst, &mut st, &summaries, &mut collector);
                for f in &mut collector.findings[before..] {
                    f.func = func.name.clone();
                    f.block = Some(format!("{} ({b})", block.name));
                }
            }
        }
        accesses.extend(collector.accesses);
        report.findings.extend(collector.findings);
    }

    // Unprotected writes to non-concrete shared addresses: can't pin the
    // word, so these stay warnings ("may" races).
    for a in &accesses {
        if a.write
            && a.locks.is_empty()
            && matches!(a.addr, AddrClass::Shared | AddrClass::May)
            && a.threads.count_ones() >= 2
        {
            let (fname, bname) = site_label(module, a.site);
            report.findings.push(Finding {
                severity: Severity::Warning,
                rule: "may-race",
                func: fname,
                block: Some(format!("{bname} ({})", a.site.block)),
                inst: Some(a.site.inst),
                message: format!(
                    "store to a possibly-shared address ({}) with no lock held",
                    if a.addr == AddrClass::Shared {
                        "thread-independent, unknown word"
                    } else {
                        "unclassifiable"
                    }
                ),
                related: Vec::new(),
            });
        }
    }

    // Eraser discipline per concrete shared word.
    let mut by_addr: BTreeMap<i64, Vec<&AccessRec>> = BTreeMap::new();
    for a in &accesses {
        if let AddrClass::Concrete(addr) = a.addr {
            by_addr.entry(addr).or_default().push(a);
        }
    }
    for (addr, accs) in &by_addr {
        let writes: Vec<&&AccessRec> = accs.iter().filter(|a| a.write).collect();
        if writes.is_empty() {
            continue; // read-only shared data is race-free
        }
        let mut candidate: Option<Vec<LockTok>> = None;
        for a in accs {
            match &mut candidate {
                Some(c) => c.retain(|t| a.locks.contains(t)),
                None => candidate = Some(a.locks.clone()),
            }
        }
        if candidate.as_deref().is_some_and(|c| !c.is_empty()) {
            continue; // consistently protected
        }
        // Find a concrete conflicting pair: a write and another access with
        // no common lock, reachable by two different threads.
        let pair = writes.iter().find_map(|w| {
            accs.iter()
                .find(|x| concurrent(w, x) && disjoint(&w.locks, &x.locks))
                .map(|x| (**w, *x))
        });
        match pair {
            Some((w, x)) => {
                let (fname, bname) = site_label(module, w.site);
                report.findings.push(Finding {
                    severity: Severity::Error,
                    rule: "race",
                    func: fname,
                    block: Some(format!("{bname} ({})", w.site.block)),
                    inst: Some(w.site.inst),
                    message: format!("data race on word {addr}: no lock consistently protects it"),
                    related: vec![
                        describe_site(module, w),
                        if w.site == x.site {
                            "conflicts with the same site executed by another thread".to_string()
                        } else {
                            format!("conflicts with {}", describe_site(module, x))
                        },
                    ],
                });
            }
            None => {
                // Every pair shares some lock but no single lock covers all
                // accesses (or the only accesses are single-threaded).
                if accs.iter().any(|a| writes.iter().any(|w| concurrent(w, a))) {
                    let w = writes[0];
                    let (fname, bname) = site_label(module, w.site);
                    report.findings.push(Finding {
                        severity: Severity::Warning,
                        rule: "inconsistent-locking",
                        func: fname,
                        block: Some(format!("{bname} ({})", w.site.block)),
                        inst: Some(w.site.inst),
                        message: format!(
                            "word {addr} is locked inconsistently: accesses are \
                             pairwise protected but no single lock covers all of them"
                        ),
                        related: accs.iter().map(|a| describe_site(module, a)).collect(),
                    });
                }
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use detlock_ir::builder::FunctionBuilder;
    use detlock_ir::inst::{BinOp, Operand};

    /// threads × (f, [tid]) for a 4-thread run of one entry.
    fn four_threads(f: FuncId) -> Vec<(FuncId, Vec<i64>)> {
        (0..4).map(|t| (f, vec![t])).collect()
    }

    #[test]
    fn unlocked_shared_counter_is_a_race() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("t", 1);
        fb.block("entry");
        let q = fb.iconst(0);
        let v = fb.load(q, 0);
        let v2 = fb.add(v, 1);
        fb.store(q, 0, v2);
        fb.ret_void();
        let f = fb.finish_into(&mut m);
        let r = analyze_races(&m, &four_threads(f));
        assert_eq!(r.count(Severity::Error), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, "race");
    }

    #[test]
    fn locked_shared_counter_is_clean() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("t", 1);
        fb.block("entry");
        let q = fb.iconst(0);
        fb.lock(7i64);
        let v = fb.load(q, 0);
        let v2 = fb.add(v, 1);
        fb.store(q, 0, v2);
        fb.unlock(7i64);
        fb.ret_void();
        let f = fb.finish_into(&mut m);
        let r = analyze_races(&m, &four_threads(f));
        assert!(r.ok(true), "{:?}", r.findings);
    }

    #[test]
    fn inconsistent_lock_choice_is_a_race() {
        // One site uses lock 1, the other lock 2: intersection is empty.
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("t", 1);
        fb.block("entry");
        let q = fb.iconst(0);
        fb.lock(1i64);
        fb.store(q, 0, 5i64);
        fb.unlock(1i64);
        fb.lock(2i64);
        fb.store(q, 0, 6i64);
        fb.unlock(2i64);
        fb.ret_void();
        let f = fb.finish_into(&mut m);
        let r = analyze_races(&m, &four_threads(f));
        assert_eq!(r.count(Severity::Error), 1, "{:?}", r.findings);
    }

    #[test]
    fn thread_private_scratch_is_clean() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("t", 1);
        fb.block("entry");
        let tid = fb.param(0);
        let off = fb.mul(tid, 1024);
        let base = fb.add(off, 4096);
        fb.store(base, 3, 42i64);
        let v = fb.load(base, 3);
        fb.store(base, 5, v);
        fb.ret_void();
        let f = fb.finish_into(&mut m);
        let r = analyze_races(&m, &four_threads(f));
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn register_derived_lock_protects_matching_slot() {
        // The water-nsq shape: slot and lock both derived from the same
        // uniform loop value.
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("t", 1);
        fb.block("entry");
        let mreg = fb.iconst(3); // stand-in for the loop counter
        let l1 = fb.bin(BinOp::And, mreg, 63);
        let lock_id = fb.add(l1, 100);
        fb.lock(lock_id);
        let a1 = fb.bin(BinOp::And, mreg, 255);
        let maddr = fb.add(a1, 512);
        let old = fb.load(maddr, 0);
        let new = fb.add(old, 1);
        fb.store(maddr, 0, new);
        fb.unlock(lock_id);
        fb.ret_void();
        let f = fb.finish_into(&mut m);
        let r = analyze_races(&m, &four_threads(f));
        assert!(r.ok(true), "{:?}", r.findings);
    }

    #[test]
    fn read_only_shared_data_is_clean() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("t", 1);
        fb.block("entry");
        let q = fb.iconst(64);
        let tid = fb.param(0);
        let off = fb.mul(tid, 1024);
        let base = fb.add(off, 4096);
        let v = fb.load(q, 0); // unlocked shared READ
        fb.store(base, 0, v); // private write
        fb.ret_void();
        let f = fb.finish_into(&mut m);
        let r = analyze_races(&m, &four_threads(f));
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn race_through_a_callee_is_found() {
        // Thread entry passes a concrete shared address to a helper that
        // stores through it without a lock.
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("helper", 1);
        fb.block("entry");
        let p = fb.param(0);
        fb.store(p, 0, 1i64);
        fb.ret_void();
        let helper = fb.finish_into(&mut m);

        let mut fb = FunctionBuilder::new("t", 1);
        fb.block("entry");
        let q = fb.iconst(8);
        fb.call_void(helper, vec![Operand::Reg(q)]);
        fb.ret_void();
        let f = fb.finish_into(&mut m);
        let r = analyze_races(&m, &four_threads(f));
        assert_eq!(r.count(Severity::Error), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].func, "helper");
    }

    #[test]
    fn caller_lock_protects_callee_access() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("helper", 1);
        fb.block("entry");
        let p = fb.param(0);
        let v = fb.load(p, 0);
        let v2 = fb.add(v, 1);
        fb.store(p, 0, v2);
        fb.ret_void();
        let helper = fb.finish_into(&mut m);

        let mut fb = FunctionBuilder::new("t", 1);
        fb.block("entry");
        let q = fb.iconst(8);
        fb.lock(3i64);
        fb.call_void(helper, vec![Operand::Reg(q)]);
        fb.unlock(3i64);
        fb.ret_void();
        let f = fb.finish_into(&mut m);
        let r = analyze_races(&m, &four_threads(f));
        assert!(r.ok(true), "{:?}", r.findings);
    }

    #[test]
    fn one_unlocked_caller_breaks_callee_protection() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("helper", 1);
        fb.block("entry");
        let p = fb.param(0);
        fb.store(p, 0, 1i64);
        fb.ret_void();
        let helper = fb.finish_into(&mut m);

        let mut fb = FunctionBuilder::new("t", 1);
        fb.block("entry");
        let q = fb.iconst(8);
        fb.lock(3i64);
        fb.call_void(helper, vec![Operand::Reg(q)]);
        fb.unlock(3i64);
        fb.call_void(helper, vec![Operand::Reg(q)]); // no lock this time
        fb.ret_void();
        let f = fb.finish_into(&mut m);
        let r = analyze_races(&m, &four_threads(f));
        assert_eq!(r.count(Severity::Error), 1, "{:?}", r.findings);
    }

    #[test]
    fn barrier_while_holding_lock_warns() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("t", 1);
        fb.block("entry");
        fb.lock(1i64);
        fb.barrier(detlock_ir::BarrierId(0));
        fb.unlock(1i64);
        fb.ret_void();
        let f = fb.finish_into(&mut m);
        let r = analyze_races(&m, &four_threads(f));
        assert!(r
            .findings
            .iter()
            .any(|f| f.rule == "lock-across-barrier" && f.severity == Severity::Warning));
    }

    #[test]
    fn single_thread_reports_nothing() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("t", 1);
        fb.block("entry");
        let q = fb.iconst(0);
        fb.store(q, 0, 1i64);
        fb.ret_void();
        let f = fb.finish_into(&mut m);
        let r = analyze_races(&m, &[(f, vec![0])]);
        assert!(r.findings.is_empty());
    }
}
