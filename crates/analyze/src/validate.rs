//! Translation validation of the clock-instrumentation pipeline.
//!
//! [`validate`] checks an instrumented module against the
//! [`PlanCert`](detlock_passes::PlanCert) the pipeline emitted for it,
//! without trusting any pipeline internals. The obligations, in order:
//!
//! 1. **Pre-module sanity** — the baseline carries no ticks (otherwise
//!    "tick-preservation" claims are meaningless) and the cert's vectors are
//!    shaped for this module pair.
//! 2. **Structure** — stripping every tick from the instrumented module
//!    yields exactly the block-split baseline: instrumentation may only
//!    *add* tick instructions, never touch program code.
//! 3. **Placement** — each block's ticks are exactly what the cert's
//!    per-block clock and the cost model's dynamic-tick rule dictate, at
//!    the claimed [`Placement`](detlock_passes::plan::Placement).
//! 4. **Clocked means** — every O1-clocked function is tick-free and its
//!    claimed mean re-derives from the baseline under the cert's own
//!    tightness thresholds.
//! 5. **Path sums** — along every acyclic path (loops cut at back edges),
//!    the planned clock equals the true cost exactly for exact configs, and
//!    stays within the cert's documented divergence bound for approximate
//!    ones: O3's per-path fraction, O2b's per-function absolute moved mass,
//!    and O4's per-loop latch slack.
//! 6. **Lock regions** — no block that can be reached with a lock held was
//!    given *more* clock than its true cost: optimizations must not sink
//!    extra ticks into critical sections, where an inflated clock delays
//!    every other thread's deterministic acquire.
//!
//! CFGs, dominator trees, loop forests and path enumerations are obtained
//! through a shared [`AnalysisManager`], so obligations 4–6 reuse each
//! other's work instead of recomputing per check. Findings that trace back
//! to a specific pipeline stage carry a `suspect pass: …` related line —
//! for path-sum violations the suspect comes from the cert's own per-pass
//! delta certs ([`PlanCert::suspect_for_path_sum`]).

use crate::{Finding, Report, Severity};
use detlock_ir::analysis::manager::{AnalysisManager, PathPolicy};
use detlock_ir::analysis::paths::PathError;
use detlock_ir::inst::{Inst, Operand};
use detlock_ir::module::{Function, Module};
use detlock_ir::types::{BlockId, FuncId};
use detlock_passes::cost::CostModel;
use detlock_passes::materialize::strip_ticks;
use detlock_passes::opt1::tight_average;
use detlock_passes::pass::{PASS_MATERIALIZE, PASS_O1, PASS_SPLIT};
use detlock_passes::plan::{block_clock_amount, split_module, Placement};
use detlock_passes::PlanCert;

/// Path-enumeration cap for the validator (a checker may spend more than
/// the optimizer's 4096).
const MAX_PATHS: usize = 65536;

fn finding(severity: Severity, rule: &'static str, func: &str, message: String) -> Finding {
    Finding {
        severity,
        rule,
        func: func.to_string(),
        block: None,
        inst: None,
        message,
        related: Vec::new(),
    }
}

/// Append the pipeline stage most plausibly responsible for `f`.
fn blame(mut f: Finding, suspect: &'static str) -> Finding {
    f.related.push(format!("suspect pass: {suspect}"));
    f
}

/// Validate `post` (the instrumented module) against `pre` (the module
/// handed to the pipeline) and the pipeline's `cert`, under `cost`.
pub fn validate(pre: &Module, post: &Module, cert: &PlanCert, cost: &CostModel) -> Report {
    let mut report = Report::default();

    // -- 1. shape ---------------------------------------------------------
    for (_, func) in pre.iter_funcs() {
        if func.tick_count() > 0 {
            report.findings.push(finding(
                Severity::Error,
                "validate/pre-ticks",
                &func.name,
                "baseline module already contains tick instructions".to_string(),
            ));
        }
    }
    if pre.functions.len() != post.functions.len()
        || cert.clocked.len() != pre.functions.len()
        || cert.block_clock.len() != pre.functions.len()
        || cert.o2b_slack.len() != pre.functions.len()
    {
        report.findings.push(finding(
            Severity::Error,
            "validate/cert-shape",
            "<module>",
            format!(
                "function counts disagree: pre {}, post {}, cert.clocked {}, \
                 cert.block_clock {}, cert.o2b_slack {}",
                pre.functions.len(),
                post.functions.len(),
                cert.clocked.len(),
                cert.block_clock.len(),
                cert.o2b_slack.len()
            ),
        ));
    }
    if !report.findings.is_empty() {
        return report; // nothing below is meaningful
    }

    let split = split_module(pre, &cert.clocked);
    let stripped = strip_ticks(post);

    // Shared analysis caches: one for the pre module (clocked-mean checks),
    // one for the split module (path sums and lock regions both want its
    // CFG; the manager computes it once per function).
    let mut am_pre = AnalysisManager::new(pre.functions.len());
    let mut am_split = AnalysisManager::new(split.functions.len());

    for (fid, split_func) in split.iter_funcs() {
        let post_func = post.func(fid);
        let fname = &split_func.name;

        // -- 2. structure --------------------------------------------------
        if let Some(msg) = structural_mismatch(split_func, stripped.func(fid)) {
            report.findings.push(blame(
                finding(
                    Severity::Error,
                    "validate/structure",
                    fname,
                    format!(
                        "instrumented module differs from the split baseline beyond ticks: {msg}"
                    ),
                ),
                PASS_SPLIT,
            ));
            continue; // block-level claims are meaningless for this function
        }
        let clocks = &cert.block_clock[fid.index()];
        if clocks.len() != split_func.blocks.len() {
            report.findings.push(finding(
                Severity::Error,
                "validate/cert-shape",
                fname,
                format!(
                    "cert has {} block clocks for {} blocks",
                    clocks.len(),
                    split_func.blocks.len()
                ),
            ));
            continue;
        }

        // -- 3. placement --------------------------------------------------
        let mut placement_ok = true;
        for (b, split_block) in split_func.iter_blocks() {
            let mut expected: Vec<Inst> = Vec::new();
            for inst in &split_block.insts {
                if let Some((per_unit, size)) = cost.needs_dynamic_tick(inst) {
                    expected.push(Inst::TickDyn {
                        base: 0,
                        per_unit,
                        size,
                    });
                }
                expected.push(inst.clone());
            }
            let amount = clocks[b.index()];
            if amount > 0 {
                match cert.placement {
                    Placement::Start => expected.insert(0, Inst::Tick { amount }),
                    Placement::End => expected.push(Inst::Tick { amount }),
                }
            }
            let actual = &post_func.block(b).insts;
            if &expected != actual {
                placement_ok = false;
                report.findings.push(Finding {
                    severity: Severity::Error,
                    rule: "validate/placement",
                    func: fname.clone(),
                    block: Some(format!("{} ({b})", split_block.name)),
                    inst: None,
                    message: "emitted ticks do not match the certified per-block clock".to_string(),
                    related: vec![
                        format!("certified clock: {amount}"),
                        format!(
                            "emitted: [{}]",
                            actual
                                .iter()
                                .filter(|i| i.is_tick())
                                .map(|i| i.to_string())
                                .collect::<Vec<_>>()
                                .join("; ")
                        ),
                        format!("suspect pass: {PASS_MATERIALIZE}"),
                    ],
                });
            }
        }

        // -- 4. clocked functions ------------------------------------------
        if let Some(mean) = cert.clocked[fid.index()] {
            if post_func.tick_count() > 0 {
                report.findings.push(blame(
                    finding(
                        Severity::Error,
                        "validate/clocked-ticks",
                        fname,
                        "function is claimed clocked (O1) but still carries ticks".to_string(),
                    ),
                    PASS_O1,
                ));
            }
            if clocks.iter().any(|&c| c > 0) {
                report.findings.push(blame(
                    finding(
                        Severity::Error,
                        "validate/clocked-ticks",
                        fname,
                        "cert assigns block clocks to a clocked function".to_string(),
                    ),
                    PASS_O1,
                ));
            }
            // Re-derive the mean on the *pre* function (the split adds
            // terminator costs for the chaining branches, so it is not the
            // surface O1 measured).
            check_clocked_mean(
                pre.func(fid),
                fid,
                mean,
                cert,
                cost,
                &mut am_pre,
                &mut report,
            );
            continue; // no path sums: call sites charge the mean instead
        }

        if !placement_ok {
            continue; // path sums would re-report the same corruption
        }

        // -- 5 & 6: path sums and lock regions over the split function -----
        check_path_sums(
            split_func,
            fid,
            clocks,
            cert,
            cert.o2b_slack[fid.index()],
            cost,
            &mut am_split,
            &mut report,
        );
        check_lock_regions(
            split_func,
            fid,
            clocks,
            cert,
            cost,
            &mut am_split,
            &mut report,
        );
    }

    report
}

/// Compare two tick-free functions; `None` when identical.
fn structural_mismatch(a: &Function, b: &Function) -> Option<String> {
    if a.name != b.name {
        return Some(format!("name `{}` vs `{}`", a.name, b.name));
    }
    if a.params != b.params || a.num_regs != b.num_regs {
        return Some("parameter/register counts differ".to_string());
    }
    if a.blocks.len() != b.blocks.len() {
        return Some(format!(
            "{} blocks vs {} blocks",
            a.blocks.len(),
            b.blocks.len()
        ));
    }
    for (x, y) in a.blocks.iter().zip(&b.blocks) {
        if x.name != y.name {
            return Some(format!("block `{}` renamed `{}`", x.name, y.name));
        }
        if x.term != y.term {
            return Some(format!("terminator of `{}` changed", x.name));
        }
        if x.insts != y.insts {
            return Some(format!("instructions of `{}` changed", x.name));
        }
    }
    None
}

/// Obligation 4: the claimed O1 mean re-derives from the baseline function
/// under the cert's own thresholds.
#[allow(clippy::too_many_arguments)]
fn check_clocked_mean(
    pre_func: &Function,
    fid: FuncId,
    mean: u64,
    cert: &PlanCert,
    cost: &CostModel,
    am: &mut AnalysisManager,
    report: &mut Report,
) {
    // Routes are value-independent block sequences, so the cached
    // enumeration is shared with any other check on this function; totals
    // re-derive exactly by summing block costs along each route.
    let routes = am.entry_routes(
        fid,
        pre_func,
        PathPolicy::FollowAll,
        cert.clockable.max_paths,
    );
    let rederived = match routes {
        Ok(routes) => {
            let totals: Vec<u64> = routes
                .iter()
                .map(|route| {
                    route
                        .iter()
                        .map(|&b| block_clock_amount(pre_func.block(b), cost, &cert.clocked))
                        .sum()
                })
                .collect();
            tight_average(&totals, &cert.clockable)
        }
        Err(_) => None, // loops / too many paths: O1 must not have clocked it
    };
    if rederived != Some(mean) {
        report.findings.push(blame(
            finding(
                Severity::Error,
                "validate/clocked-mean",
                &pre_func.name,
                match rederived {
                    Some(m) => format!("claimed clocked mean {mean} but paths re-derive {m}"),
                    None => format!(
                        "claimed clocked mean {mean} but the function does not satisfy \
                         the tightness criterion at all"
                    ),
                },
            ),
            PASS_O1,
        ));
    }
}

/// Obligation 5: per acyclic path (back edges cut), the certified clock
/// tracks the true cost within the cert's bound. `o2b_slack` is the cert's
/// claimed absolute divergence for this function from O2b's approximate
/// moves (the pass bounds each move against loop/function mass, not against
/// any particular path, so the claim is an absolute mass, not a fraction).
#[allow(clippy::too_many_arguments)]
fn check_path_sums(
    split_func: &Function,
    fid: FuncId,
    clocks: &[u64],
    cert: &PlanCert,
    o2b_slack: u64,
    cost: &CostModel,
    am: &mut AnalysisManager,
    report: &mut Report,
) {
    let loops = am.loops(fid, split_func);
    let routes = am.entry_routes(fid, split_func, PathPolicy::CutBackEdges, MAX_PATHS);
    let routes = match routes {
        Ok(r) => r,
        Err(e) => {
            report.findings.push(finding(
                Severity::Warning,
                "validate/too-many-paths",
                &split_func.name,
                format!(
                    "path sums not checkable: {}",
                    match e {
                        PathError::TooManyPaths => format!("more than {MAX_PATHS} acyclic paths"),
                        PathError::Cycle => "cycle not cut by back edges".to_string(),
                        PathError::Aborted => "enumeration aborted".to_string(),
                    }
                ),
            ));
            return;
        }
    };

    // Worst violation across all paths; one finding per function.
    let mut worst: Option<(f64, usize, u64, u64, f64)> = None;
    for (i, route) in routes.iter().enumerate() {
        let true_sum: u64 = route
            .iter()
            .map(|&b| block_clock_amount(split_func.block(b), cost, &cert.clocked))
            .sum();
        let planned: u64 = route.iter().map(|b| clocks[b.index()]).sum();
        // Allowed divergence: the cert's fractional bound of the true cost
        // (O3), plus the function's absolute O2b slack, plus O4's absolute
        // latch slack once per loop the path crosses, plus half a unit of
        // integer-rounding slack per block for the fractional configs (O3
        // charges `mean.round()` per region, and a path crosses at most one
        // region per block).
        let headers = route.iter().filter(|b| loops.is_loop_header(**b)).count() as f64;
        let latch_slack = cert.o4_latch_threshold.unwrap_or(0) as f64 * headers;
        let rounding = if cert.frac_bound > 0.0 {
            0.5 * route.len() as f64
        } else {
            0.0
        };
        let allowed = cert.frac_bound * true_sum as f64 + o2b_slack as f64 + latch_slack + rounding;
        let diff = (planned as f64 - true_sum as f64).abs();
        if diff > allowed + 1e-9 {
            let excess = diff - allowed;
            if worst.is_none_or(|(w, ..)| excess > w) {
                worst = Some((excess, i, true_sum, planned, allowed));
            }
        }
    }
    if let Some((_, i, true_sum, planned, allowed)) = worst {
        let route_names: Vec<String> = routes[i]
            .iter()
            .map(|b| split_func.block(*b).name.clone())
            .collect();
        let mut related = vec![format!("worst path: {}", route_names.join(" → "))];
        // The cert's own per-pass deltas name the approximate pass most
        // plausibly responsible; when every registered pass was precise the
        // plan itself is wrong, not over-approximated.
        related.push(match cert.suspect_for_path_sum(fid.index()) {
            Some(pass) => format!("suspect pass: {pass}"),
            None => "suspect pass: none — every registered pass claimed exact sums".to_string(),
        });
        report.findings.push(Finding {
            severity: Severity::Error,
            rule: "validate/path-sum",
            func: split_func.name.clone(),
            block: None,
            inst: None,
            message: format!(
                "path clock diverges from true cost beyond the certified bound \
                 (planned {planned}, true {true_sum}, allowed ±{allowed:.1})"
            ),
            related,
        });
    }
}

/// Lock token for the intraprocedural may-held analysis (obligation 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum HeldTok {
    Imm(i64),
    Reg(u32),
}

/// Obligation 6: blocks reachable with a lock possibly held must not be
/// planned *more* clock than their true cost.
#[allow(clippy::too_many_arguments)]
fn check_lock_regions(
    split_func: &Function,
    fid: FuncId,
    clocks: &[u64],
    cert: &PlanCert,
    cost: &CostModel,
    am: &mut AnalysisManager,
    report: &mut Report,
) {
    let tok = |id: &Operand| -> HeldTok {
        match id {
            Operand::Imm(v) => HeldTok::Imm(*v),
            Operand::Reg(r) => HeldTok::Reg(r.0),
        }
    };
    let step_block = |entry: &[HeldTok], b: BlockId| -> Vec<HeldTok> {
        let mut held = entry.to_vec();
        for inst in &split_func.block(b).insts {
            match inst {
                Inst::Lock { id } => {
                    let t = tok(id);
                    if let Err(pos) = held.binary_search(&t) {
                        held.insert(pos, t);
                    }
                }
                Inst::Unlock { id } => {
                    if let Ok(pos) = held.binary_search(&tok(id)) {
                        held.remove(pos);
                    }
                }
                Inst::Barrier { .. } => held.clear(),
                _ => {}
            }
        }
        held
    };

    // May-held fixpoint: union join, so a block counts as lock-held if ANY
    // path reaches it with a lock still held.
    let cfg = am.cfg(fid, split_func);
    let n = split_func.blocks.len();
    let mut entry_held: Vec<Option<Vec<HeldTok>>> = vec![None; n];
    entry_held[split_func.entry().index()] = Some(Vec::new());
    let mut work = vec![split_func.entry()];
    let mut budget = 8 * n.max(1) * n.max(1);
    while let Some(b) = work.pop() {
        if budget == 0 {
            break;
        }
        budget -= 1;
        let held = step_block(entry_held[b.index()].as_ref().expect("queued"), b);
        for succ in cfg.succs(b) {
            let slot = &mut entry_held[succ.index()];
            let changed = match slot {
                Some(existing) => {
                    let mut changed = false;
                    for &t in &held {
                        if let Err(pos) = existing.binary_search(&t) {
                            existing.insert(pos, t);
                            changed = true;
                        }
                    }
                    changed
                }
                None => {
                    *slot = Some(held.clone());
                    true
                }
            };
            if changed && !work.contains(succ) {
                work.push(*succ);
            }
        }
    }

    for (b, block) in split_func.iter_blocks() {
        let Some(entry) = &entry_held[b.index()] else {
            continue;
        };
        // The tick executes where it is placed: at block entry for `Start`,
        // after the body for `End` — judge the lockset at that point.
        let held_at_tick = match cert.placement {
            Placement::Start => entry.clone(),
            Placement::End => step_block(entry, b),
        };
        if held_at_tick.is_empty() {
            continue;
        }
        let true_amount = block_clock_amount(block, cost, &cert.clocked);
        let planned = clocks[b.index()];
        if planned > true_amount {
            report.findings.push(Finding {
                severity: Severity::Error,
                rule: "validate/tick-in-lock",
                func: split_func.name.clone(),
                block: Some(format!("{} ({b})", block.name)),
                inst: None,
                message: format!(
                    "block reachable with a lock held was planned {planned} clock \
                     against a true cost of {true_amount}: extra ticks were sunk \
                     into a critical section"
                ),
                related: vec![
                    format!(
                        "locks possibly held at the tick: {}",
                        held_at_tick
                            .iter()
                            .map(|t| match t {
                                HeldTok::Imm(v) => format!("lock {v}"),
                                HeldTok::Reg(r) => format!("lock[r{r}]"),
                            })
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                    format!("suspect pass: {PASS_MATERIALIZE}"),
                ],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detlock_ir::builder::FunctionBuilder;
    use detlock_ir::inst::CmpOp;
    use detlock_ir::Builtin;
    use detlock_passes::pipeline::{instrument, OptConfig, OptLevel};

    /// A module exercising every pipeline feature: a clockable leaf, a loop,
    /// an unclocked-call split, a lock region, and a dynamic builtin.
    fn test_module() -> (Module, Vec<detlock_ir::FuncId>) {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("leaf", 0);
        fb.block("entry");
        fb.compute(8);
        fb.ret_void();
        let leaf = fb.finish_into(&mut m);

        let mut fb = FunctionBuilder::new("main", 1);
        fb.block("entry");
        let head = fb.create_block("head");
        let body = fb.create_block("body");
        let after = fb.create_block("after");
        let i = fb.iconst(0);
        fb.br(head);
        fb.switch_to(head);
        let p = fb.param(0);
        let c = fb.cmp(CmpOp::Lt, i, p);
        fb.cond_br(c, body, after);
        fb.switch_to(body);
        fb.compute(3);
        fb.call_void(leaf, vec![]);
        fb.bin_to(detlock_ir::BinOp::Add, i, i, 1);
        fb.br(head);
        fb.switch_to(after);
        fb.lock(1i64);
        fb.compute(2);
        fb.unlock(1i64);
        fb.builtin_void(
            Builtin::Memset,
            vec![Operand::Imm(0), Operand::Imm(0), Operand::Imm(16)],
            Some(2),
        );
        fb.ret_void();
        let main = fb.finish_into(&mut m);
        (m, vec![main])
    }

    fn cost() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn accepts_every_table1_row() {
        let (m, entries) = test_module();
        for level in OptLevel::table1_rows() {
            for placement in [Placement::Start, Placement::End] {
                let out = instrument(&m, &cost(), &OptConfig::only(level), placement, &entries);
                let r = validate(&m, &out.module, &out.cert, &cost());
                assert!(
                    r.ok(true),
                    "{} / {placement:?}: {:#?}",
                    level.label(),
                    r.findings
                );
            }
        }
    }

    #[test]
    fn rejects_tampered_tick_amount() {
        let (m, entries) = test_module();
        let mut out = instrument(&m, &cost(), &OptConfig::none(), Placement::Start, &entries);
        'outer: for func in out.module.functions.iter_mut() {
            for block in func.blocks.iter_mut() {
                for inst in block.insts.iter_mut() {
                    if let Inst::Tick { amount } = inst {
                        *amount += 3;
                        break 'outer;
                    }
                }
            }
        }
        let r = validate(&m, &out.module, &out.cert, &cost());
        let f = r
            .findings
            .iter()
            .find(|f| f.rule == "validate/placement")
            .expect("placement finding");
        assert!(
            f.related
                .iter()
                .any(|l| l == "suspect pass: materialize-ticks"),
            "{:#?}",
            f.related
        );
    }

    #[test]
    fn rejects_consistently_corrupted_cert() {
        // Corrupt the cert AND the module the same way: placement agrees,
        // so only the path-sum obligation can catch it.
        let (m, entries) = test_module();
        let mut out = instrument(&m, &cost(), &OptConfig::none(), Placement::Start, &entries);
        let fid = out
            .cert
            .block_clock
            .iter()
            .position(|c| c.iter().any(|&v| v > 0))
            .unwrap();
        let bid = out.cert.block_clock[fid]
            .iter()
            .position(|&v| v > 0)
            .unwrap();
        out.cert.block_clock[fid][bid] += 5;
        let block = &mut out.module.functions[fid].blocks[bid];
        for inst in block.insts.iter_mut() {
            if let Inst::Tick { amount } = inst {
                *amount += 5;
                break;
            }
        }
        let r = validate(&m, &out.module, &out.cert, &cost());
        let f = r
            .findings
            .iter()
            .find(|f| f.rule == "validate/path-sum")
            .unwrap_or_else(|| panic!("{:#?}", r.findings));
        // No-optimization run registered only precise passes: the validator
        // reports that nobody's slack budget explains the divergence.
        assert!(
            f.related
                .iter()
                .any(|l| l.starts_with("suspect pass: none")),
            "{:#?}",
            f.related
        );
    }

    #[test]
    fn rejects_tamper_beyond_o2b_slack() {
        // Under O2 the cert grants each function an absolute slack equal to
        // the mass 2b reported moving — corrupting a tick (and the cert, so
        // placement agrees) by more than that slack must still trip the
        // path-sum obligation.
        let (m, entries) = test_module();
        let mut out = instrument(
            &m,
            &cost(),
            &OptConfig::only(OptLevel::O2),
            Placement::Start,
            &entries,
        );
        let fid = out
            .cert
            .block_clock
            .iter()
            .position(|c| c.iter().any(|&v| v > 0))
            .unwrap();
        let bid = out.cert.block_clock[fid]
            .iter()
            .position(|&v| v > 0)
            .unwrap();
        let delta = out.cert.o2b_slack[fid] + 5;
        out.cert.block_clock[fid][bid] += delta;
        let block = &mut out.module.functions[fid].blocks[bid];
        for inst in block.insts.iter_mut() {
            if let Inst::Tick { amount } = inst {
                *amount += delta;
                break;
            }
        }
        let r = validate(&m, &out.module, &out.cert, &cost());
        let f = r
            .findings
            .iter()
            .find(|f| f.rule == "validate/path-sum")
            .unwrap_or_else(|| panic!("{:#?}", r.findings));
        // The suspect line is wired to the cert's own per-pass blame: the
        // tampered function carried no O2b slack in this module, so no
        // approximate pass claims the divergence (the policy itself is
        // unit-tested in detlock-passes' cert module).
        let expected = match out.cert.suspect_for_path_sum(fid) {
            Some(p) => format!("suspect pass: {p}"),
            None => "suspect pass: none — every registered pass claimed exact sums".to_string(),
        };
        assert!(f.related.contains(&expected), "{:#?}", f.related);
    }

    #[test]
    fn rejects_program_code_edits() {
        let (m, entries) = test_module();
        let mut out = instrument(&m, &cost(), &OptConfig::none(), Placement::Start, &entries);
        // Change a non-tick instruction in the output.
        'outer: for func in out.module.functions.iter_mut() {
            for block in func.blocks.iter_mut() {
                for inst in block.insts.iter_mut() {
                    if let Inst::Const { value, .. } = inst {
                        *value += 1;
                        break 'outer;
                    }
                }
            }
        }
        let r = validate(&m, &out.module, &out.cert, &cost());
        assert!(r.findings.iter().any(|f| f.rule == "validate/structure"));
    }

    #[test]
    fn rejects_pre_module_with_ticks() {
        let (mut m, entries) = test_module();
        let out = instrument(&m, &cost(), &OptConfig::none(), Placement::Start, &entries);
        m.functions[0].blocks[0]
            .insts
            .insert(0, Inst::Tick { amount: 1 });
        let r = validate(&m, &out.module, &out.cert, &cost());
        assert!(r.findings.iter().any(|f| f.rule == "validate/pre-ticks"));
    }

    #[test]
    fn rejects_tick_sunk_into_lock_region() {
        // entry(lock) → held(compute) → exit(unlock): move clock mass from
        // `exit` into `held` keeping path sums exact — only the lock-region
        // obligation can reject it.
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("crit", 0);
        fb.block("entry");
        let held = fb.create_block("held");
        let exit = fb.create_block("exit");
        fb.lock(1i64);
        fb.br(held);
        fb.switch_to(held);
        fb.compute(4);
        fb.br(exit);
        fb.switch_to(exit);
        fb.unlock(1i64);
        fb.compute(6);
        fb.ret_void();
        let f = fb.finish_into(&mut m);

        let mut out = instrument(&m, &cost(), &OptConfig::none(), Placement::Start, &[f]);
        // The split isolates the lock/unlock into their own blocks; find the
        // lock-held `held` block and the post-unlock tail by name.
        let blocks = &out.module.functions[f.index()].blocks;
        let idx_held = blocks.iter().position(|b| b.name == "held").unwrap();
        let idx_tail = blocks.iter().position(|b| b.name == "split.exit").unwrap();
        let clocks = &mut out.cert.block_clock[f.index()];
        assert!(clocks[idx_tail] > 2, "tail block has mass to move");
        clocks[idx_held] += 2;
        clocks[idx_tail] -= 2;
        let fixed = clocks.clone();
        for (b, block) in out.module.functions[f.index()]
            .blocks
            .iter_mut()
            .enumerate()
        {
            for inst in block.insts.iter_mut() {
                if let Inst::Tick { amount } = inst {
                    *amount = fixed[b];
                }
            }
        }
        let r = validate(&m, &out.module, &out.cert, &cost());
        assert!(
            r.findings.iter().any(|f| f.rule == "validate/tick-in-lock"),
            "{:#?}",
            r.findings
        );
        assert!(
            !r.findings.iter().any(|f| f.rule == "validate/path-sum"),
            "path sums were kept exact on purpose: {:#?}",
            r.findings
        );
    }

    #[test]
    fn rejects_wrong_clocked_mean() {
        let (m, entries) = test_module();
        let mut out = instrument(
            &m,
            &cost(),
            &OptConfig::only(OptLevel::O1),
            Placement::Start,
            &entries,
        );
        let cid = out
            .cert
            .clocked
            .iter()
            .position(|c| c.is_some())
            .expect("leaf gets clocked under O1");
        *out.cert.clocked[cid].as_mut().unwrap() += 7;
        let r = validate(&m, &out.module, &out.cert, &cost());
        assert!(
            r.findings.iter().any(|f| f.rule == "validate/clocked-mean"),
            "{:#?}",
            r.findings
        );
    }
}
