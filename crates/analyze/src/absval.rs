//! Thread-dependence abstract domain for the lockset race detector.
//!
//! Each register is abstracted by how its value depends on the identity of
//! the executing thread. The domain deliberately ignores *when* threads
//! reach a point — `Uniform` does not mean "equal right now", it means the
//! value is computed by a thread-independent function of program state, so
//! two threads at the same site *may* coincide (a shared address) but never
//! diverge *because of* thread identity. `Distinct` is the dual: an
//! injective function of the thread id, so addresses derived from it are
//! thread-private.
//!
//! Two rules are deliberate heuristics rather than theorems, in the Eraser
//! tradition of useful-over-complete:
//!
//! * `Distinct ⊔ Distinct = Distinct` — two control-flow paths may derive
//!   "distinct" values differently, and a cross-path collision between two
//!   threads is possible in principle.
//! * `Distinct × Const(c) = Distinct` for `c ≠ 0` — multiplication by an
//!   even constant is not injective modulo 2⁶⁴. Workload thread ids are
//!   tiny, so the wraparound collision cannot occur in practice.

use detlock_ir::inst::{BinOp, CmpOp, Operand};

/// Abstract value: how a register depends on the executing thread's id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// Unreachable / not yet defined.
    Bot,
    /// The known constant `v` on every thread.
    Const(i64),
    /// Thread-independent but unknown (e.g. a loop counter).
    Uniform,
    /// Pairwise distinct across threads (e.g. `tid`, a scratch base).
    Distinct,
    /// May depend on thread identity arbitrarily (e.g. a loaded value).
    Unknown,
}

impl AbsVal {
    /// Thread-independent values: `Const` or `Uniform`.
    #[inline]
    pub fn is_thread_independent(self) -> bool {
        matches!(self, AbsVal::Const(_) | AbsVal::Uniform)
    }

    /// Least upper bound over control-flow joins.
    pub fn join(self, other: AbsVal) -> AbsVal {
        use AbsVal::*;
        match (self, other) {
            (Bot, x) | (x, Bot) => x,
            (Const(a), Const(b)) if a == b => Const(a),
            (a, b) if a.is_thread_independent() && b.is_thread_independent() => Uniform,
            (Distinct, Distinct) => Distinct,
            _ => Unknown,
        }
    }

    /// Seed a parameter from the concrete per-thread argument values.
    pub fn seed(values: &[i64]) -> AbsVal {
        match values {
            [] => AbsVal::Unknown,
            [first, rest @ ..] => {
                if rest.iter().all(|v| v == first) {
                    return AbsVal::Const(*first);
                }
                let mut sorted = values.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                if sorted.len() == values.len() {
                    AbsVal::Distinct
                } else {
                    AbsVal::Unknown
                }
            }
        }
    }

    /// Abstract a binary operation.
    pub fn bin(op: BinOp, a: AbsVal, b: AbsVal) -> AbsVal {
        use AbsVal::*;
        if a == Bot || b == Bot {
            return Bot;
        }
        if let (Const(x), Const(y)) = (a, b) {
            return Const(op.apply(x, y));
        }
        if a.is_thread_independent() && b.is_thread_independent() {
            return Uniform;
        }
        match op {
            // x ↦ x ± u and x ↦ u − x are injective in x.
            BinOp::Add | BinOp::Sub | BinOp::Xor => match (a, b) {
                (Distinct, u) | (u, Distinct) if u.is_thread_independent() => Distinct,
                _ => Unknown,
            },
            BinOp::Mul => match (a, b) {
                (Distinct, Const(c)) | (Const(c), Distinct) if c != 0 => Distinct,
                _ => Unknown,
            },
            _ => Unknown,
        }
    }

    /// Abstract a comparison (result is 0/1).
    pub fn cmp(op: CmpOp, a: AbsVal, b: AbsVal) -> AbsVal {
        use AbsVal::*;
        if a == Bot || b == Bot {
            return Bot;
        }
        if let (Const(x), Const(y)) = (a, b) {
            return Const(op.apply(x, y));
        }
        if a.is_thread_independent() && b.is_thread_independent() {
            Uniform
        } else {
            Unknown
        }
    }

    /// Evaluate an operand against a register state.
    pub fn of_operand(op: &Operand, regs: &[AbsVal]) -> AbsVal {
        match op {
            Operand::Imm(v) => AbsVal::Const(*v),
            Operand::Reg(r) => regs.get(r.index()).copied().unwrap_or(AbsVal::Unknown),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AbsVal::*;

    #[test]
    fn seeds_from_thread_args() {
        assert_eq!(AbsVal::seed(&[3, 3, 3, 3]), Const(3));
        assert_eq!(AbsVal::seed(&[0, 1, 2, 3]), Distinct);
        assert_eq!(AbsVal::seed(&[0, 1, 1, 3]), Unknown);
        assert_eq!(AbsVal::seed(&[7]), Const(7));
        assert_eq!(AbsVal::seed(&[]), Unknown);
    }

    #[test]
    fn join_lattice() {
        assert_eq!(Const(1).join(Const(1)), Const(1));
        assert_eq!(
            Const(0).join(Const(1)),
            Uniform,
            "loop counters stay uniform"
        );
        assert_eq!(Const(1).join(Uniform), Uniform);
        assert_eq!(Distinct.join(Distinct), Distinct);
        assert_eq!(Distinct.join(Const(1)), Unknown);
        assert_eq!(Bot.join(Distinct), Distinct);
        assert_eq!(Uniform.join(Unknown), Unknown);
    }

    #[test]
    fn scratch_base_stays_distinct() {
        // tid * SCRATCH_WORDS + SCRATCH_BASE: the workload address recipe.
        let base = AbsVal::bin(BinOp::Mul, Distinct, Const(1024));
        assert_eq!(base, Distinct);
        assert_eq!(AbsVal::bin(BinOp::Add, base, Const(4096)), Distinct);
        // But multiplying by zero collapses every thread to zero.
        assert_eq!(AbsVal::bin(BinOp::Mul, Distinct, Const(0)), Unknown);
    }

    #[test]
    fn uniform_arithmetic_stays_uniform() {
        assert_eq!(AbsVal::bin(BinOp::And, Uniform, Const(63)), Uniform);
        assert_eq!(AbsVal::bin(BinOp::Add, Uniform, Const(100)), Uniform);
        assert_eq!(AbsVal::cmp(CmpOp::Lt, Uniform, Const(10)), Uniform);
    }

    #[test]
    fn unknown_poisons() {
        assert_eq!(AbsVal::bin(BinOp::Add, Unknown, Const(1)), Unknown);
        assert_eq!(AbsVal::bin(BinOp::And, Distinct, Const(7)), Unknown);
        assert_eq!(AbsVal::cmp(CmpOp::Eq, Unknown, Uniform), Unknown);
    }

    #[test]
    fn consts_fold() {
        assert_eq!(AbsVal::bin(BinOp::Add, Const(2), Const(3)), Const(5));
        assert_eq!(AbsVal::cmp(CmpOp::Lt, Const(2), Const(3)), Const(1));
    }
}
