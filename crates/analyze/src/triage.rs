//! Triage: join `detsan` dynamic reports against static lockset findings.
//!
//! The static analysis over-approximates (`may-race`) and its old
//! confirmation path — the two-seed `vm::race::confirm_race` divergence
//! probe — is both expensive (N full baseline runs) and weak (absence of a
//! divergence proves nothing). The happens-before sanitizer
//! ([`detlock_vm::sanitizer`]) gives a precise per-site verdict instead.
//! Every static `race` / `may-race` finding becomes one of:
//!
//! * [`Verdict::Confirmed`] — a dynamic race touches the finding's site:
//!   the report carries a [`RaceWitness::HappensBefore`] witness.
//! * [`Verdict::RefutedByHb`] — the site executed and a conflicting
//!   same-word access by another thread existed, but every such pair was
//!   happens-before ordered: on the swept inputs the lockset analysis was
//!   too coarse.
//! * [`Verdict::Unobserved`] — the swept workloads/seeds never exercised
//!   the site concurrently; the static finding stands as-is.
//!
//! The join key is the `(function, block, instruction)` coordinate both
//! layers already speak: static findings carry it in
//! [`Finding::func`]/[`Finding::block`]/[`Finding::inst`], and the
//! sanitizer runs over the *source* (uninstrumented) module so instruction
//! indices line up with the analysis exactly.

use crate::{Finding, Report, Severity};
use detlock_shim::json::{Json, ToJson};
use detlock_vm::race::RaceWitness;
use detlock_vm::sanitizer::SanitizerReport;

/// The dynamic verdict on one static race finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// A dynamic happens-before witness touches this site.
    Confirmed,
    /// The site was never exercised concurrently on the swept runs.
    Unobserved,
    /// Conflicts on the site's words existed but all were HB-ordered.
    RefutedByHb,
}

impl Verdict {
    /// Stable lowercase label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Confirmed => "confirmed",
            Verdict::Unobserved => "unobserved",
            Verdict::RefutedByHb => "refuted-by-HB",
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One triaged static finding.
#[derive(Debug, Clone)]
pub struct TriagedFinding {
    /// Index of the finding in the static report it was triaged from.
    pub index: usize,
    /// The static rule (`race` or `may-race`).
    pub rule: &'static str,
    /// Function of the static finding.
    pub func: String,
    /// Block label of the static finding (as the static report prints it).
    pub block: Option<String>,
    /// Instruction index of the static finding.
    pub inst: Option<usize>,
    /// The dynamic verdict.
    pub verdict: Verdict,
    /// For confirmed findings: the happens-before witness.
    pub witness: Option<RaceWitness>,
}

impl std::fmt::Display for TriagedFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.rule, self.func)?;
        if let Some(b) = &self.block {
            write!(f, "/{b}")?;
        }
        if let Some(i) = self.inst {
            write!(f, "#{i}")?;
        }
        write!(f, ": {}", self.verdict)?;
        if let Some(w) = &self.witness {
            write!(f, " ({w})")?;
        }
        Ok(())
    }
}

impl ToJson for TriagedFinding {
    fn to_json(&self) -> Json {
        Json::obj([
            ("index", Json::Int(self.index as i64)),
            ("rule", self.rule.to_json()),
            ("func", self.func.to_json()),
            ("block", self.block.to_json()),
            ("inst", self.inst.to_json()),
            ("verdict", self.verdict.label().to_json()),
            (
                "witness",
                match &self.witness {
                    Some(w) => Json::Str(w.to_string()),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// The triage of one workload's static report against one (possibly
/// seed-merged) sanitizer report.
#[derive(Debug, Clone, Default)]
pub struct TriageReport {
    /// One row per static `race` / `may-race` finding, in report order.
    pub rows: Vec<TriagedFinding>,
}

impl TriageReport {
    /// Rows with the given verdict.
    pub fn count(&self, v: Verdict) -> usize {
        self.rows.iter().filter(|r| r.verdict == v).count()
    }

    /// The first confirmed witness, if any — what `detlint --confirm`
    /// prints (one witness type with the divergence probe, so the output
    /// format is unchanged for downstream consumers).
    pub fn witness(&self) -> Option<&RaceWitness> {
        self.rows.iter().find_map(|r| r.witness.as_ref())
    }

    /// Compact `confirmed/unobserved/refuted` summary for table columns.
    pub fn summary(&self) -> String {
        if self.rows.is_empty() {
            return "-".to_string();
        }
        format!(
            "{}c/{}u/{}r",
            self.count(Verdict::Confirmed),
            self.count(Verdict::Unobserved),
            self.count(Verdict::RefutedByHb)
        )
    }
}

impl std::fmt::Display for TriageReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for row in &self.rows {
            writeln!(f, "{row}")?;
        }
        Ok(())
    }
}

impl ToJson for TriageReport {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "confirmed",
                Json::Int(self.count(Verdict::Confirmed) as i64),
            ),
            (
                "unobserved",
                Json::Int(self.count(Verdict::Unobserved) as i64),
            ),
            (
                "refuted_by_hb",
                Json::Int(self.count(Verdict::RefutedByHb) as i64),
            ),
            (
                "rows",
                Json::Arr(self.rows.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }
}

/// Parse the block index out of a static finding's block label, which the
/// lockset analysis renders as `"{name} (bb{N})"`.
fn block_index(label: &str) -> Option<u32> {
    let open = label.rfind("(bb")?;
    let rest = &label[open + 3..];
    let close = rest.find(')')?;
    rest[..close].parse().ok()
}

/// Triage every static `race` / `may-race` finding in `report` against
/// `dynamic`. Findings without a full site coordinate (no block or no
/// instruction index) are classified `Unobserved` — the sanitizer cannot
/// address them.
pub fn triage(report: &Report, dynamic: &SanitizerReport) -> TriageReport {
    let mut rows = Vec::new();
    for (index, f) in report.findings.iter().enumerate() {
        if f.rule != "race" && f.rule != "may-race" {
            continue;
        }
        let site = f
            .block
            .as_deref()
            .and_then(block_index)
            .zip(f.inst)
            .map(|(b, i)| (b, i as u32));
        let (verdict, witness) = match site {
            None => (Verdict::Unobserved, None),
            Some((block, inst)) => {
                let races = dynamic.races_at(&f.func, block, inst);
                if let Some(r) = races.first() {
                    (
                        Verdict::Confirmed,
                        Some(RaceWitness::HappensBefore((*r).clone())),
                    )
                } else {
                    match dynamic.site(&f.func, block, inst) {
                        Some(stat) if stat.contended => (Verdict::RefutedByHb, None),
                        _ => (Verdict::Unobserved, None),
                    }
                }
            }
        };
        rows.push(TriagedFinding {
            index,
            rule: f.rule,
            func: f.func.clone(),
            block: f.block.clone(),
            inst: f.inst,
            verdict,
            witness,
        });
    }
    TriageReport { rows }
}

/// Convert a sanitizer report's own discoveries into static-report-shaped
/// findings, so dynamic-only problems (races the lockset analysis missed,
/// deadlock-prone lock cycles no static pass can see through indirect lock
/// choice) surface through the same reporting pipeline and exit codes.
///
/// Races aggregate per word (`detsan/race`, error); each lock-order cycle
/// becomes one `detsan/lock-cycle` warning — deadlock-*prone*, not a
/// determinism violation per se.
pub fn dynamic_findings(dynamic: &SanitizerReport) -> Report {
    let mut findings = Vec::new();
    let mut word: Option<usize> = None;
    let mut sites: Vec<String> = Vec::new();
    let mut pairs = 0usize;
    let flush = |word: &mut Option<usize>,
                 sites: &mut Vec<String>,
                 pairs: &mut usize,
                 findings: &mut Vec<Finding>| {
        if let Some(w) = word.take() {
            findings.push(Finding {
                severity: Severity::Error,
                rule: "detsan/race",
                func: sites.first().cloned().unwrap_or_default(),
                block: None,
                inst: None,
                message: format!(
                    "word {w}: {pairs} unordered conflicting access pair{} observed",
                    if *pairs == 1 { "" } else { "s" }
                ),
                related: std::mem::take(sites),
            });
            *pairs = 0;
        }
    };
    for r in &dynamic.races {
        if word != Some(r.word) {
            flush(&mut word, &mut sites, &mut pairs, &mut findings);
            word = Some(r.word);
        }
        pairs += 1;
        for acc in [&r.a, &r.b] {
            let line = format!("{acc}");
            if !sites.contains(&line) {
                sites.push(line);
            }
        }
    }
    flush(&mut word, &mut sites, &mut pairs, &mut findings);
    for c in &dynamic.lock_cycles {
        findings.push(Finding {
            severity: Severity::Warning,
            rule: "detsan/lock-cycle",
            func: c.edges.first().map(|e| e.func.clone()).unwrap_or_default(),
            block: None,
            inst: None,
            message: format!("deadlock-prone acquisition cycle: {c}"),
            related: c
                .edges
                .iter()
                .map(|e| {
                    format!(
                        "{}->{} at {}/bb{}#{}",
                        e.from, e.to, e.func, e.block, e.inst
                    )
                })
                .collect(),
        });
    }
    Report { findings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detlock_vm::sanitizer::Sanitizer;

    fn static_race(func: &str, block: &str, inst: usize) -> Report {
        Report {
            findings: vec![Finding {
                severity: Severity::Error,
                rule: "race",
                func: func.to_string(),
                block: Some(block.to_string()),
                inst: Some(inst),
                message: "data race".to_string(),
                related: vec![],
            }],
        }
    }

    #[test]
    fn block_label_parses() {
        assert_eq!(block_index("body (bb2)"), Some(2));
        assert_eq!(block_index("loop.head (bb10)"), Some(10));
        assert_eq!(block_index("no id here"), None);
    }

    #[test]
    fn unordered_conflict_confirms_the_static_finding() {
        let mut s = Sanitizer::new(2);
        s.access(0, 5, true, (0, 2, 3));
        s.access(1, 5, true, (0, 2, 3));
        let module = detlock_ir::Module::new();
        let dyn_report = s.finalize(&module);
        let t = triage(&static_race("@f0", "body (bb2)", 3), &dyn_report);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0].verdict, Verdict::Confirmed);
        assert!(t.witness().is_some());
    }

    #[test]
    fn ordered_conflict_refutes_and_silence_is_unobserved() {
        let mut s = Sanitizer::new(2);
        s.acquire(0, 9, (0, 0, 0));
        s.access(0, 5, true, (0, 2, 3));
        s.release(0, 9);
        s.acquire(1, 9, (0, 0, 0));
        s.access(1, 5, true, (0, 2, 3));
        s.release(1, 9);
        let module = detlock_ir::Module::new();
        let dyn_report = s.finalize(&module);
        let refuted = triage(&static_race("@f0", "body (bb2)", 3), &dyn_report);
        assert_eq!(refuted.rows[0].verdict, Verdict::RefutedByHb);
        let silent = triage(&static_race("@f0", "other (bb7)", 1), &dyn_report);
        assert_eq!(silent.rows[0].verdict, Verdict::Unobserved);
    }

    #[test]
    fn dynamic_findings_raise_errors_and_cycle_warnings() {
        let mut s = Sanitizer::new(2);
        s.access(0, 5, true, (0, 2, 3));
        s.access(1, 5, true, (0, 2, 4));
        s.acquire(0, 2, (0, 0, 0));
        s.acquire(0, 3, (0, 0, 1));
        s.release(0, 3);
        s.release(0, 2);
        s.acquire(1, 3, (0, 0, 2));
        s.acquire(1, 2, (0, 0, 3));
        s.release(1, 2);
        s.release(1, 3);
        let module = detlock_ir::Module::new();
        let r = dynamic_findings(&s.finalize(&module));
        assert_eq!(r.count(Severity::Error), 1, "one aggregated race word");
        assert_eq!(r.count(Severity::Warning), 1, "one lock cycle");
        assert!(!r.ok(false));
    }
}
