//! # DetLock — portable deterministic execution for shared-memory programs
//!
//! A from-scratch Rust reproduction of *DetLock: Portable and Efficient
//! Deterministic Execution for Shared Memory Multicore Systems* (Mushtaq,
//! Al-Ars, Bertels — SC 2012).
//!
//! DetLock makes race-free multithreaded programs **weakly deterministic**:
//! the order in which threads win synchronization operations is a function
//! of the program and its input alone, not of thread timing — so the same
//! input produces the same lock interleaving on every run, which is what
//! testing, debugging, and replica-based fault tolerance need. Unlike
//! Kendo, it needs no deterministic hardware performance counters and no
//! kernel changes: per-thread logical clocks are advanced by *clock update
//! code inserted by the compiler* at basic-block granularity, and a set of
//! compiler optimizations both shrinks that code and hoists it *ahead of
//! execution* so lock waiters are released sooner.
//!
//! ## Crates
//!
//! | Crate | Role |
//! |---|---|
//! | [`detlock_core`] | The runtime: [`detlock_core::DetRuntime`], [`detlock_core::DetMutex`], [`detlock_core::DetBarrier`], [`detlock_core::DetRwLock`], [`detlock_core::DetCondvar`], [`detlock_core::DetPool`], [`detlock_core::tick`] |
//! | [`detlock_ir`] | Executable mini compiler IR + CFG analyses |
//! | [`detlock_passes`] | The instrumentation pass: clock insertion + optimizations O1–O4 |
//! | [`detlock_vm`] | Deterministic cycle-level multicore simulator (the measurement substrate) |
//! | [`detlock_workloads`] | SPLASH-2-shaped workload generators for the paper's evaluation |
//!
//! ## Quick start (runtime)
//!
//! ```
//! use detlock::{DetRuntime, DetMutex, tick};
//! use std::sync::Arc;
//!
//! let rt = DetRuntime::with_defaults();
//! let total = Arc::new(DetMutex::new(&rt, 0u64));
//! let mut handles = Vec::new();
//! for t in 0..4u64 {
//!     let total = Arc::clone(&total);
//!     handles.push(rt.spawn(move || {
//!         for i in 0..100 {
//!             tick(7 + (t + i) % 3); // instrumented builds insert these
//!             *total.lock() += 1;
//!         }
//!     }));
//! }
//! for h in handles { h.join(); }
//! assert_eq!(*total.lock(), 400);
//! ```
//!
//! ## Quick start (compiler + simulator)
//!
//! ```
//! use detlock_ir::{FunctionBuilder, Module};
//! use detlock_passes::{instrument, CostModel, OptConfig, Placement};
//! use detlock_vm::{run, ExecMode, MachineConfig, ThreadSpec};
//!
//! let mut m = Module::new();
//! let mut fb = FunctionBuilder::new("kernel", 0);
//! fb.block("entry");
//! fb.compute(64);
//! fb.lock(0i64);
//! fb.compute(4);
//! fb.unlock(0i64);
//! fb.ret_void();
//! let f = fb.finish_into(&mut m);
//!
//! let cost = CostModel::default();
//! let out = instrument(&m, &cost, &OptConfig::all(), Placement::Start, &[f]);
//! let threads: Vec<ThreadSpec> = (0..2)
//!     .map(|_| ThreadSpec { func: f, args: vec![] })
//!     .collect();
//! let (metrics, hit_limit) = run(
//!     &out.module,
//!     &cost,
//!     &threads,
//!     MachineConfig { mode: ExecMode::Det, ..MachineConfig::default() },
//! );
//! assert!(!hit_limit);
//! assert_eq!(metrics.lock_acquires(), 2);
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

#![warn(missing_docs)]

pub use detlock_core;
pub use detlock_ir;
pub use detlock_passes;
pub use detlock_vm;
pub use detlock_workloads;

pub use detlock_core::{
    panic_message, tick, try_tick, DetBarrier, DetCondvar, DetConfig, DetError, DetJoinHandle,
    DetMutex, DetPool, DetRuntime, DetRwLock, FaultPlan, InjectedPanic, StallAction,
};
